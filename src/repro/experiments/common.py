"""Shared experiment scaffolding.

The paper's PCC experiments (§3.2, §6.2) replay a one-hour PoP trace with
149 VIPs and 2.77 M new connections per minute per ToR.  Replaying that in
pure Python would take hours, so every experiment takes a ``scale`` knob:
``scale=1.0`` is a laptop-sized default (tens of thousands of connections
over a couple of minutes) and the knob multiplies both VIP count and
arrival rate towards the paper's operating point.  The reproduction target
is the *shape* of each figure — who wins, by what rough factor, where the
crossovers sit — not Facebook's absolute counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import SilkRoadConfig, SilkRoadSwitch
from ..netsim.batchsim import BatchedFlowSimulator
from ..netsim import (
    ArrivalGenerator,
    Cluster,
    Connection,
    FlowSimulator,
    SimulationReport,
    UpdateEvent,
    UpdateGenerator,
    make_cluster,
    spare_pool,
    uniform_vip_workloads,
)
from ..netsim.flows import DurationModel, HADOOP

#: Baseline laptop-scale workload knobs (scale = 1.0).
BASE_VIPS = 10
BASE_DIPS_PER_VIP = 16
BASE_NEW_CONNS_PER_MIN = 30_000.0
BASE_HORIZON_S = 120.0
BASE_WARMUP_S = 20.0


@dataclass
class PccWorkload:
    """One generated workload, replayable against several systems."""

    cluster: Cluster
    connections: List[Connection]
    updates: List[UpdateEvent]
    horizon_s: float
    updates_per_min: float

    def replay(
        self,
        lb_factory: Callable[[], object],
        faults: Optional[object] = None,
        attach: Optional[Callable[[FlowSimulator, object], None]] = None,
        batched: bool = True,
        batch_size: int = 256,
    ) -> Tuple[SimulationReport, List[Connection], object]:
        """Run a fresh LB instance over a *fresh copy* of the workload.

        Connections are stateful (decision logs), so each replay clones
        them; update events are immutable and shared.  ``faults`` is an
        optional :class:`~repro.faults.injector.FaultInjector` attached to
        the run.  ``attach``, when given, is called as
        ``attach(sim, lb)`` after the simulator is built but before it
        runs — the hook observability uses to arm a
        :class:`~repro.obs.timeline.TimelineSampler` on the event queue
        and hand the LB a :class:`~repro.obs.recorder.FlightRecorder`.
        ``batched`` selects the chunked-arrival driver
        (:class:`~repro.netsim.batchsim.BatchedFlowSimulator`, the
        default); ``batched=False`` runs the scalar event-at-a-time
        oracle.  Both produce bit-identical results (enforced by
        tests/asicsim/test_differential.py).  Returns the report, the
        replayed connections, and the LB instance (for its counters).
        """
        conns = [
            Connection(
                conn_id=c.conn_id,
                five_tuple=c.five_tuple,
                vip=c.vip,
                start=c.start,
                duration=c.duration,
                rate_bps=c.rate_bps,
            )
            for c in self.connections
        ]
        lb = lb_factory()
        for service in self.cluster.services:
            lb.announce_vip(service.vip, service.dips)
        if batched:
            sim = BatchedFlowSimulator(lb, faults=faults, batch_size=batch_size)
        else:
            sim = FlowSimulator(lb, faults=faults)
        if attach is not None:
            attach(sim, lb)
        report = sim.run(conns, self.updates, horizon_s=self.horizon_s)
        return report, conns, lb


def build_workload(
    updates_per_min: float,
    scale: float = 1.0,
    seed: int = 7,
    horizon_s: float = BASE_HORIZON_S,
    warmup_s: float = BASE_WARMUP_S,
    duration_model: DurationModel = HADOOP,
    arrival_scale: float = 1.0,
    num_vips: Optional[int] = None,
) -> PccWorkload:
    """Generate the PoP-style workload used by Figures 5, 16, 17, 18."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    vips = num_vips if num_vips is not None else max(int(BASE_VIPS * scale), 2)
    cluster = make_cluster(
        name="pop-trace",
        num_vips=vips,
        dips_per_vip=BASE_DIPS_PER_VIP,
        duration_model=duration_model,
    )
    generator = ArrivalGenerator(seed=seed)
    connections = generator.generate(
        uniform_vip_workloads(
            cluster.vips,
            BASE_NEW_CONNS_PER_MIN * scale * arrival_scale,
            duration_model=duration_model,
        ),
        horizon_s=horizon_s,
        warmup_s=warmup_s,
    )
    update_gen = UpdateGenerator(seed=seed + 1)
    updates = update_gen.poisson_updates(
        cluster.pools(),
        updates_per_min=updates_per_min,
        horizon_s=horizon_s,
        spare_dips=spare_pool(cluster),
    )
    return PccWorkload(
        cluster=cluster,
        connections=connections,
        updates=updates,
        horizon_s=horizon_s,
        updates_per_min=updates_per_min,
    )


def silkroad_factory(
    use_transit_table: bool = True,
    transit_table_bytes: int = 256,
    learning_timeout_s: float = 1e-3,
    insertion_rate_per_s: float = 200_000.0,
    conn_table_capacity: int = 300_000,
    name: Optional[str] = None,
) -> Callable[[], SilkRoadSwitch]:
    """Factory for the SilkRoad variants the figures compare."""

    if name is None:
        name = "silkroad" if use_transit_table else "silkroad-no-transittable"

    def make() -> SilkRoadSwitch:
        config = SilkRoadConfig(
            conn_table_capacity=conn_table_capacity,
            use_transit_table=use_transit_table,
            transit_table_bytes=transit_table_bytes,
            learning_filter_timeout_s=learning_timeout_s,
            insertion_rate_per_s=insertion_rate_per_s,
        )
        return SilkRoadSwitch(config, name=name)

    return make
