"""§7: combining SilkRoad with SLBs — ConnTable as a connection cache.

When ConnTable fills, SilkRoad can redirect the overflow connections to
software (the switch CPU or an SLB tier): their mappings are pinned there,
so PCC still holds, but the overflow traffic loses the ASIC's latency and
throughput benefits.  This experiment sweeps ConnTable sizes under a fixed
offered load and reports the overflow fraction and PCC outcome of the
hybrid against the pure ablation that leaves overflow on the slow path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .common import build_workload, silkroad_factory


@dataclass(frozen=True)
class HybridPoint:
    conn_table_capacity: int
    hybrid: bool
    violations: int
    overflow_pinned: int
    table_full_events: int
    connections: int

    @property
    def overflow_fraction(self) -> float:
        if self.connections == 0:
            return 0.0
        return self.table_full_events / self.connections


def run(
    capacities: Sequence[int] = (1_000, 5_000, 50_000),
    scale: float = 0.5,
    seed: int = 77,
    horizon_s: float = 120.0,
    updates_per_min: float = 20.0,
) -> List[HybridPoint]:
    points: List[HybridPoint] = []
    workload = build_workload(
        updates_per_min=updates_per_min, scale=scale, seed=seed, horizon_s=horizon_s
    )
    for capacity in capacities:
        for hybrid in (False, True):
            def factory(capacity=capacity, hybrid=hybrid):
                from ..core import SilkRoadConfig, SilkRoadSwitch

                config = SilkRoadConfig(
                    conn_table_capacity=capacity,
                    overflow_to_software=hybrid,
                    insertion_rate_per_s=50_000.0,
                )
                name = "hybrid" if hybrid else "pure"
                return SilkRoadSwitch(config, name=f"{name}-{capacity}")

            report, _conns, lb = workload.replay(factory)
            points.append(
                HybridPoint(
                    conn_table_capacity=capacity,
                    hybrid=hybrid,
                    violations=report.pcc_violations,
                    overflow_pinned=int(lb.overflow_pinned),
                    table_full_events=int(lb.table_full_events),
                    connections=report.measured_connections,
                )
            )
    return points


def main(seed: int = 77) -> str:
    from ..analysis import format_table

    points = run(seed=seed)
    rows = [
        (
            p.conn_table_capacity,
            "hybrid" if p.hybrid else "slow-path",
            p.table_full_events,
            p.overflow_pinned,
            p.violations,
        )
        for p in points
    ]
    table = format_table(
        (
            "ConnTable capacity",
            "overflow policy",
            "overflow events",
            "pinned in software",
            "PCC violations",
        ),
        rows,
        title="§7 hybrid: ConnTable as a cache, overflow to software/SLB",
    )
    return table + (
        "\nexpectation: the hybrid keeps PCC at zero even when ConnTable "
        "overflows; the slow-path ablation can break overflow connections"
    )


if __name__ == "__main__":
    print(main())
