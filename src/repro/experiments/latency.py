"""§2.2/§5.2: processing-latency comparison, switch ASIC vs SLB tier.

The paper's latency argument: SLBs add 50 µs - 1 ms of batching latency —
comparable to the 250 µs median datacenter RTT and fatal for 2-5 µs RDMA
RTTs — while a switching-ASIC pipeline adds well under a microsecond, and
new pipeline logic only tens of nanoseconds.  This experiment computes the
pipeline traversal time from the RMT stage model and contrasts it with the
published SLB figures, including the multi-tier amplification the paper
describes (a request fanning out through several LB hops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import format_table
from ..asicsim.pipeline import Pipeline
from ..baselines.slb import SLB_LATENCY_S

#: Published latency anchors (seconds).
SLB_LATENCY_RANGE_S = (50e-6, 1e-3)
DATACENTER_RTT_MEDIAN_S = 250e-6  # Pingmesh median
RDMA_RTT_S = (2e-6, 5e-6)
DUET_MEDIAN_LATENCY_S = 474e-6


@dataclass(frozen=True)
class LatencyComparison:
    silkroad_pipeline_s: float
    slb_median_s: float
    duet_median_s: float

    @property
    def speedup_vs_slb(self) -> float:
        return self.slb_median_s / self.silkroad_pipeline_s

    def chained(self, hops: int, base_rtt_s: float = DATACENTER_RTT_MEDIAN_S) -> Dict[str, float]:
        """End-to-end latency when a request traverses ``hops`` LB layers."""
        if hops <= 0:
            raise ValueError("hops must be positive")
        return {
            "silkroad": base_rtt_s + hops * self.silkroad_pipeline_s,
            "slb": base_rtt_s + hops * self.slb_median_s,
        }


def run() -> LatencyComparison:
    pipeline = Pipeline()
    return LatencyComparison(
        silkroad_pipeline_s=pipeline.latency_ns * 1e-9,
        slb_median_s=SLB_LATENCY_S,
        duet_median_s=DUET_MEDIAN_LATENCY_S,
    )


def main() -> str:
    comparison = run()
    rows: List = [
        ("SilkRoad pipeline traversal", f"{comparison.silkroad_pipeline_s * 1e6:.2f} us"),
        ("SLB added latency (median model)", f"{comparison.slb_median_s * 1e6:.0f} us"),
        ("SLB added latency (published range)",
         f"{SLB_LATENCY_RANGE_S[0] * 1e6:.0f}-{SLB_LATENCY_RANGE_S[1] * 1e6:.0f} us"),
        ("Duet median latency", f"{comparison.duet_median_s * 1e6:.0f} us"),
        ("datacenter RTT (median)", f"{DATACENTER_RTT_MEDIAN_S * 1e6:.0f} us"),
        ("RDMA RTT", f"{RDMA_RTT_S[0] * 1e6:.0f}-{RDMA_RTT_S[1] * 1e6:.0f} us"),
        ("speedup vs SLB", f"{comparison.speedup_vs_slb:.0f}x"),
    ]
    chained = comparison.chained(hops=3)
    rows.append(
        ("3-hop service chain (SilkRoad)", f"{chained['silkroad'] * 1e6:.0f} us")
    )
    rows.append(("3-hop service chain (SLB)", f"{chained['slb'] * 1e6:.0f} us"))
    table = format_table(
        ("metric", "value"), rows, title="Load-balancing latency (§2.2, §5.2)"
    )
    return table + "\npaper anchor: sub-microsecond pipeline vs 50us-1ms SLB batching"


if __name__ == "__main__":
    print(main())
