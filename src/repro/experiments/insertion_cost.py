"""§5.2: ConnTable insertion cost as the table fills.

The paper measures the switch CPU as the insertion bottleneck — hash
computations dominate, the cuckoo BFS stays cheap — and projects 200 K
insertions/second.  This experiment measures our model's analogue: the
number of cuckoo *moves* per insertion (the BFS work the CPU performs and
the PCI-E writes it issues) as a function of table occupancy, confirming
the "complex search but rarely needed" characterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..asicsim.cuckoo import CuckooTable, TableFull
from ..netsim.packet import TupleFactory, VirtualIP

DEFAULT_BANDS = ((0.0, 0.5), (0.5, 0.75), (0.75, 0.85), (0.85, 0.95))


@dataclass(frozen=True)
class InsertionBand:
    load_low: float
    load_high: float
    insertions: int
    total_moves: int
    failures: int

    @property
    def moves_per_insert(self) -> float:
        if self.insertions == 0:
            return 0.0
        return self.total_moves / self.insertions


def run(
    capacity: int = 40_000,
    bands: Sequence = DEFAULT_BANDS,
    seed: int = 0x1A5E27,
) -> List[InsertionBand]:
    table = CuckooTable.for_capacity(capacity, target_load=0.95, seed=seed)
    factory = TupleFactory()
    vip = VirtualIP.parse("20.0.0.1:80")
    out: List[InsertionBand] = []
    for low, high in bands:
        target = int(table.capacity * high)
        insertions = 0
        moves = 0
        failures = 0
        while len(table) < target:
            key = factory.next_for(vip).key_bytes()
            try:
                result = table.insert(key, 1)
                insertions += 1
                moves += result.moves
            except TableFull:
                failures += 1
                if failures > 1000:
                    break
        out.append(
            InsertionBand(
                load_low=low,
                load_high=high,
                insertions=insertions,
                total_moves=moves,
                failures=failures,
            )
        )
    return out


def main(seed: int = 0x1A5E27) -> str:
    from ..analysis import format_table

    bands = run(seed=seed)
    rows = [
        (
            f"{b.load_low:.0%}-{b.load_high:.0%}",
            b.insertions,
            f"{b.moves_per_insert:.4f}",
            b.failures,
        )
        for b in bands
    ]
    table = format_table(
        ("occupancy band", "insertions", "cuckoo moves/insert", "failures"),
        rows,
        title="§5.2 insertion cost vs ConnTable occupancy",
    )
    return table + (
        "\npaper anchor: hash computation dominates CPU time; the cuckoo "
        "search is 'relatively small' — moves/insert should stay well "
        "below 1 even at high loads"
    )


if __name__ == "__main__":
    print(main())
