"""Sharded parallel experiment replay with lossless metric merge.

The paper's evaluation replays hour-long PoP traces; at laptop scale a
single-process replay is the wall-clock bottleneck of the whole harness.
This module splits one seeded experiment into **deterministic shards** —
by (cluster, VIP) slice for the workload replays, by grid cell for the
TransitTable sweep, by derived seed for chaos runs — farms the shards out
to ``spawn``-ed worker processes, and merges the per-shard
:class:`~repro.obs.metrics.MetricRegistry` and
:class:`~repro.core.verify.AuditReport` objects back into one fleet view.

Design invariants, asserted by the test suite:

* **Shard layout is fixed by ``num_shards``**, never by ``workers``: the
  worker count only sizes the process pool.  An N-shard run therefore
  produces bit-identical merged fingerprints whether it ran on 1 or 8
  workers, and repeated runs with the same seeds are bit-identical.
* **Per-shard seeds are derived**, not shared: shard *i* replays with
  ``derive_shard_seed(seed, i)`` (a splitmix64 mix), so shards are
  statistically independent slices of the same experiment, and the union
  is statistically equivalent to — not a permutation of — the unsharded
  run.
* **Merges happen in shard order** (ascending ``shard_id``), so float
  accumulation is reproducible regardless of worker completion order.
* **Workers are expendable**: a crashed or failing shard is retried once
  (fresh process), then reported in ``failed`` without sinking the run.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..asicsim.hashing import mix64
from ..core.silkroad import SilkRoadSwitch
from ..core.verify import AuditReport, audit_switch
from ..obs.metrics import Gauge, Histogram, MetricRegistry
from ..obs.recorder import FlightRecorder
from ..obs.timeline import Timeline, TimelineSampler

__all__ = [
    "FailedShard",
    "ShardResult",
    "ShardSpec",
    "ShardedRunResult",
    "derive_shard_seed",
    "make_shards",
    "run_sharded",
]

#: Salt so shard seeds never collide with the base seed itself.
_SHARD_SEED_SALT = 0x51AB_D5EE_D000_0000


def derive_shard_seed(seed: int, shard_id: int) -> int:
    """A well-separated 63-bit seed for one shard of a seeded run.

    Splitmix64-mixes ``(seed, shard_id)`` so neighbouring shards (and
    neighbouring base seeds) get uncorrelated generator streams — the
    correlated-collision hazard the single-pass hash pipeline work already
    established for table hashing applies equally to workload RNGs.
    """
    if shard_id < 0:
        raise ValueError("shard_id must be non-negative")
    return mix64(shard_id ^ _SHARD_SEED_SALT, seed) >> 1


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a sharded run; picklable, fully self-describing.

    ``params`` is a flat tuple of ``(key, value)`` pairs (primitives and
    tuples only) so the spec survives the spawn pickle boundary and can be
    hashed/compared in tests.
    """

    task: str
    shard_id: int
    num_shards: int
    seed: int
    params: Tuple[Tuple[str, object], ...] = ()

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass
class ShardResult:
    """What one worker sends back: mergeable state only, no live objects."""

    shard_id: int
    registry: MetricRegistry
    audit: AuditReport
    counters: Dict[str, float] = field(default_factory=dict)
    #: metric timeline, when the run asked for ``timeline_period_s``.
    timeline: Optional[Timeline] = None
    #: flight recorder, when the run asked for ``record``.
    recorder: Optional[FlightRecorder] = None


@dataclass(frozen=True)
class FailedShard:
    shard_id: int
    reason: str


@dataclass
class ShardedRunResult:
    """The merged fleet view of one sharded run."""

    task: str
    seed: int
    num_shards: int
    workers: int
    shards: List[ShardResult]
    failed: List[FailedShard]
    registry: MetricRegistry
    audit: AuditReport
    counters: Dict[str, float]
    #: fold of every shard's timeline (``None`` unless the run asked for one).
    timeline: Optional[Timeline] = None
    #: fold of every shard's recorder (``None`` unless the run asked for one).
    recorder: Optional[FlightRecorder] = None

    @property
    def fingerprint(self) -> str:
        return self.registry.fingerprint()

    @property
    def timeline_fingerprint(self) -> Optional[str]:
        return self.timeline.fingerprint() if self.timeline is not None else None

    @property
    def ok(self) -> bool:
        return self.audit.ok and not self.failed

    def summary(self) -> str:
        state = "ok" if self.ok else "FAILED"
        failed = (
            f", {len(self.failed)} shards failed" if self.failed else ""
        )
        return (
            f"{self.task}[seed={self.seed}]: {len(self.shards)}/"
            f"{self.num_shards} shards on {self.workers} workers {state}"
            f" ({self.audit.checks_run} checks, "
            f"{len(self.audit.violations)} violations{failed}), "
            f"fingerprint {self.fingerprint[:16]}"
        )


# ----------------------------------------------------------------------
# Shard bodies (run inside worker processes; must be module-level so the
# spawn start method can re-import them)
# ----------------------------------------------------------------------


def _fold_prefixed(
    target: MetricRegistry, source: MetricRegistry, prefix: str
) -> None:
    """Fold ``source`` into ``target`` under a name prefix.

    Used to keep two systems' switches (e.g. ``silkroad`` and
    ``silkroad-no-transittable``) from colliding on identical instrument
    names inside one shard registry.
    """
    for name, theirs in source.instruments():
        pname = f"{prefix}.{name}"
        if isinstance(theirs, Histogram):
            ours = target.histogram(pname, buckets=theirs.bounds, help=theirs.help)
        elif isinstance(theirs, Gauge):
            ours = target.gauge(pname, help=theirs.help)
        else:
            ours = target.counter(pname, help=theirs.help)
        ours.merge_from(theirs)


def _shard_registry(spec: ShardSpec) -> MetricRegistry:
    return MetricRegistry(
        labels={"task": spec.task, "shard": str(spec.shard_id)}
    )


def _make_attach(
    spec: ShardSpec,
    scope: str,
    horizon_s: float,
    timeline_period_s: Optional[float],
    record: bool,
    samplers: List[TimelineSampler],
    recorders: List[FlightRecorder],
):
    """Build the ``replay(attach=...)`` hook instrumenting one replay.

    The hook duck-types the LB: recorders only attach to switches exposing
    ``attach_recorder`` and samplers only arm when the LB carries a metric
    registry (the Duet baseline has neither).  Samplers use ``scope.`` as
    the column prefix — the same namespace :func:`_fold_prefixed` gives the
    merged registry — and recorders are tagged ``s<shard>.<scope>`` so the
    fleet-wide merge stays attributable.  Returns ``None`` when nothing
    was requested, keeping the replay hook-free (and the hot path
    untouched).
    """
    if timeline_period_s is None and not record:
        return None
    recorder = (
        FlightRecorder(source=f"s{spec.shard_id}.{scope}") if record else None
    )

    def attach(sim, lb) -> None:
        if recorder is not None and hasattr(lb, "attach_recorder"):
            lb.attach_recorder(recorder)
            recorders.append(recorder)
        metrics = getattr(lb, "metrics", None)
        if timeline_period_s is not None and metrics is not None:
            sampler = TimelineSampler(
                metrics, float(timeline_period_s), prefix=f"{scope}."
            )
            sampler.attach(sim.queue, horizon_s=horizon_s)
            samplers.append(sampler)

    return attach


def _run_fig16_shard(spec: ShardSpec) -> ShardResult:
    """Replay this shard's VIP slice of a Figure-16-style workload.

    Both workload generators take *total* rates that they split across
    VIPs, so a shard holding ``k`` of ``V`` VIPs scales both the arrival
    knob (``scale``) and the update rate by ``k/V`` — the union of all
    shards then carries the full experiment's load.
    """
    from . import fig16
    from .common import build_workload

    p = spec.param_dict()
    total_vips = int(p["total_vips"])
    shard_vips = int(p["shard_vips"])
    frac = shard_vips / total_vips
    systems = tuple(p.get("systems", ("duet", "silkroad-no-transittable", "silkroad")))
    workload = build_workload(
        updates_per_min=float(p.get("updates_per_min", 10.0)) * frac,
        scale=float(p.get("scale", 1.0)) * frac,
        seed=spec.seed,
        horizon_s=float(p.get("horizon_s", 120.0)),
        warmup_s=float(p.get("warmup_s", 20.0)),
        num_vips=shard_vips,
    )
    factories = fig16.default_systems(
        insertion_rate_per_s=float(p.get("insertion_rate_per_s", 20_000.0))
    )
    registry = _shard_registry(spec)
    audit = AuditReport()
    counters: Dict[str, float] = {}
    timeline_period = p.get("timeline_period_s")
    record = bool(p.get("record", False))
    samplers: List[TimelineSampler] = []
    recorders: List[FlightRecorder] = []
    for name in systems:
        attach = _make_attach(
            spec,
            name,
            workload.horizon_s,
            timeline_period,
            record,
            samplers,
            recorders,
        )
        report, conns, lb = workload.replay(
            factories[name], attach=attach, batched=bool(p.get("batched", True))
        )
        scope = registry.scope(name)
        scope.counter(
            "pcc_violations_total", help="connections that broke PCC"
        ).inc(report.pcc_violations)
        scope.counter(
            "measured_connections_total", help="connections in the window"
        ).inc(report.measured_connections)
        scope.counter(
            "connections_total", help="all replayed connections"
        ).inc(report.total_connections)
        counters[f"{name}.pcc_violations"] = float(report.pcc_violations)
        counters[f"{name}.measured_connections"] = float(
            report.measured_connections
        )
        if isinstance(lb, SilkRoadSwitch):
            audit.merge(audit_switch(lb, connections=conns), label=name)
            _fold_prefixed(registry, lb.metrics, name)
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=audit,
        counters=counters,
        timeline=Timeline.merged(s.timeline for s in samplers),
        recorder=FlightRecorder.merged(recorders),
    )


def _run_fig18_shard(spec: ShardSpec) -> ShardResult:
    """Run this shard's cells of the (filter size x timeout) grid.

    Each cell is seeded by its index in the *full* grid, so the merged
    result does not depend on how cells were grouped into shards.
    """
    from .common import build_workload, silkroad_factory

    p = spec.param_dict()
    registry = _shard_registry(spec)
    audit = AuditReport()
    counters: Dict[str, float] = {}
    timeline_period = p.get("timeline_period_s")
    record = bool(p.get("record", False))
    samplers: List[TimelineSampler] = []
    recorders: List[FlightRecorder] = []
    for cell_index, size, timeout_s in p["cells"]:
        workload = build_workload(
            updates_per_min=float(p.get("updates_per_min", 30.0)),
            scale=float(p.get("scale", 1.0)),
            seed=derive_shard_seed(spec.seed, 1_000 + int(cell_index)),
            horizon_s=float(p.get("horizon_s", 60.0)),
            warmup_s=float(p.get("warmup_s", 10.0)),
            arrival_scale=float(p.get("arrival_scale", 16.0)),
            num_vips=int(p.get("num_vips", 2)),
        )
        factory = silkroad_factory(
            use_transit_table=True,
            transit_table_bytes=int(size),
            learning_timeout_s=float(timeout_s),
            insertion_rate_per_s=float(p.get("insertion_rate_per_s", 50_000.0)),
            conn_table_capacity=int(p.get("conn_table_capacity", 600_000)),
            name=f"silkroad-{int(size)}B",
        )
        cell = f"cell{int(cell_index):02d}"
        attach = _make_attach(
            spec,
            cell,
            workload.horizon_s,
            timeline_period,
            record,
            samplers,
            recorders,
        )
        report, conns, lb = workload.replay(
            factory, attach=attach, batched=bool(p.get("batched", True))
        )
        scope = registry.scope(cell)
        scope.counter(
            "pcc_violations_total", help="connections that broke PCC"
        ).inc(report.pcc_violations)
        scope.counter(
            "transit_fp_adopted_total", help="old-version adoptions via Bloom FP"
        ).inc(float(lb.transit_fp_adopted))
        counters[f"{cell}.pcc_violations"] = float(report.pcc_violations)
        counters[f"{cell}.transit_fp_adopted"] = float(lb.transit_fp_adopted)
        audit.merge(audit_switch(lb, connections=conns), label=cell)
        _fold_prefixed(registry, lb.metrics, cell)
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=audit,
        counters=counters,
        timeline=Timeline.merged(s.timeline for s in samplers),
        recorder=FlightRecorder.merged(recorders),
    )


def _run_chaos_shard(spec: ShardSpec) -> ShardResult:
    """One independent chaos run under this shard's derived seed."""
    from ..faults.chaos import run_chaos

    p = spec.param_dict()
    timeline_period = p.get("timeline_period_s")
    result = run_chaos(
        seed=spec.seed,
        scale=float(p.get("scale", 0.05)),
        horizon_s=float(p.get("horizon_s", 20.0)),
        warmup_s=float(p.get("warmup_s", 2.0)),
        updates_per_min=float(p.get("updates_per_min", 60.0)),
        faults_per_min=float(p.get("faults_per_min", 30.0)),
        record=bool(p.get("record", False)),
        batched=bool(p.get("batched", True)),
        record_source=f"s{spec.shard_id}.chaos",
        timeline_period_s=(
            float(timeline_period) if timeline_period is not None else None
        ),
    )
    registry = _shard_registry(spec)
    scope = registry.scope("chaos")
    scope.counter("faults_injected_total", help="faults in the plan").inc(
        len(result.plan)
    )
    scope.counter(
        "pcc_violations_total", help="connections that broke PCC"
    ).inc(result.report.pcc_violations)
    scope.counter(
        "overdue_updates_total", help="updates that overran the watchdog"
    ).inc(result.overdue_updates)
    registry.merge(result.switch.metrics)
    counters = {
        "faults_injected": float(len(result.plan)),
        "pcc_violations": float(result.report.pcc_violations),
        "overdue_updates": float(result.overdue_updates),
    }
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=result.audit,
        counters=counters,
        timeline=result.timeline,
        recorder=result.recorder,
    )


def _run_fleet_shard(spec: ShardSpec) -> ShardResult:
    """Run this shard's cells of the fleet-chaos survival sweep.

    A cell is one ``(pattern, plan)`` fleet run.  Like fig18, each cell is
    seeded by its index in the *full* sweep, so merged fingerprints depend
    on the layout but never on worker count.  The merged audit carries the
    fleet attribution requirement: any unattributed PCC violation or drop
    in any cell surfaces as a violation labelled with that cell.
    """
    from ..faults.fleet import run_fleet

    p = spec.param_dict()
    registry = _shard_registry(spec)
    audit = AuditReport()
    counters: Dict[str, float] = {}
    timeline_period = p.get("timeline_period_s")
    record = bool(p.get("record", False))
    timelines: List[Timeline] = []
    recorders: List[FlightRecorder] = []
    for cell_index, pattern in p["cells"]:
        cell = f"cell{int(cell_index):02d}-{pattern}"
        result = run_fleet(
            seed=derive_shard_seed(spec.seed, 2_000 + int(cell_index)),
            fault_seed=derive_shard_seed(spec.seed, 3_000 + int(cell_index)),
            pattern=str(pattern),
            num_switches=int(p.get("num_switches", 4)),
            scale=float(p.get("scale", 0.05)),
            horizon_s=float(p.get("horizon_s", 20.0)),
            warmup_s=float(p.get("warmup_s", 2.0)),
            updates_per_min=float(p.get("updates_per_min", 60.0)),
            faults_per_min=float(p.get("faults_per_min", 4.0)),
            replication=p.get("replication"),
            conn_budget=p.get("conn_budget"),
            record=record,
            record_source=f"s{spec.shard_id}.{cell}",
            timeline_period_s=(
                float(timeline_period) if timeline_period is not None else None
            ),
            batched=bool(p.get("batched", True)),
        )
        audit.merge(result.audit.audit, label=cell)
        audit.checks_run += 2
        if result.audit.unattributed_violations:
            audit.violations.append(
                f"[{cell}] {result.audit.unattributed_violations} PCC "
                "violations with no fleet attribution"
            )
        if result.audit.unattributed_drops:
            audit.violations.append(
                f"[{cell}] {result.audit.unattributed_drops} dropped "
                "connections with no fleet attribution"
            )
        survival = result.survival
        for key in ("measured", "kept", "broken", "blackholed"):
            counters[f"{pattern}.{key}"] = (
                counters.get(f"{pattern}.{key}", 0.0) + float(survival[key])
            )
        counters[f"{pattern}.shed"] = counters.get(
            f"{pattern}.shed", 0.0
        ) + float(result.fleet.shed_connections)
        scope = registry.scope(cell)
        scope.counter(
            "pcc_broken_total", help="measured connections that broke PCC"
        ).inc(survival["broken"])
        scope.counter(
            "blackholed_total", help="measured connections blackholed intact"
        ).inc(survival["blackholed"])
        _fold_prefixed(registry, result.fleet.merged_registry(), cell)
        if result.timeline is not None:
            timelines.append(result.timeline)
        if result.recorder is not None:
            recorders.append(result.recorder)
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=audit,
        counters=counters,
        timeline=Timeline.merged(timelines) if timelines else None,
        recorder=FlightRecorder.merged(recorders) if recorders else None,
    )


def _run_crashy_shard(spec: ShardSpec) -> ShardResult:
    """Test-only task exercising the fault-tolerance path.

    ``crash_once_marker`` names a file: on the first attempt the worker
    creates it and dies without a word (``os._exit``), on the retry it
    succeeds — so tests can pin the retry-once contract.  With
    ``always_fail`` the shard raises every time and must end up in
    ``failed``.
    """
    p = spec.param_dict()
    if p.get("always_fail"):
        raise RuntimeError(f"shard {spec.shard_id} told to fail")
    marker = p.get("crash_once_marker")
    if marker and not os.path.exists(str(marker)):
        with open(str(marker), "w") as fh:
            fh.write(str(spec.shard_id))
        os._exit(3)
    registry = _shard_registry(spec)
    registry.counter("crashy.completions_total").inc()
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=AuditReport(),
        counters={"completions": 1.0},
    )


_TASKS: Dict[str, Callable[[ShardSpec], ShardResult]] = {
    "fig16": _run_fig16_shard,
    "fig18": _run_fig18_shard,
    "chaos": _run_chaos_shard,
    "fleet": _run_fleet_shard,
    "_crashy": _run_crashy_shard,
}


def run_shard(spec: ShardSpec) -> ShardResult:
    """Execute one shard in the current process."""
    try:
        body = _TASKS[spec.task]
    except KeyError:
        raise ValueError(
            f"unknown shard task {spec.task!r} (have {sorted(_TASKS)})"
        ) from None
    return body(spec)


def _worker_main(spec: ShardSpec, conn) -> None:
    """Spawned worker entrypoint: run one shard, ship the result back."""
    try:
        result = run_shard(spec)
        conn.send(("ok", result))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Shard layout
# ----------------------------------------------------------------------


def _freeze_params(params: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(params.items()))


def make_shards(
    task: str,
    num_shards: int,
    seed: int,
    params: Optional[Dict[str, object]] = None,
) -> List[ShardSpec]:
    """The deterministic shard layout of one run.

    Depends only on ``(task, num_shards, seed, params)`` — never on worker
    count or machine — which is what makes merged fingerprints comparable
    across pool sizes.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if task not in _TASKS:
        raise ValueError(f"unknown shard task {task!r} (have {sorted(_TASKS)})")
    params = dict(params or {})
    specs: List[ShardSpec] = []
    if task == "fig16":
        total_vips = int(params.pop("num_vips", 8))
        if num_shards > total_vips:
            raise ValueError(
                f"cannot split {total_vips} VIPs into {num_shards} shards"
            )
        base, extra = divmod(total_vips, num_shards)
        for shard_id in range(num_shards):
            shard_vips = base + (1 if shard_id < extra else 0)
            shard_params = dict(
                params, total_vips=total_vips, shard_vips=shard_vips
            )
            specs.append(
                ShardSpec(
                    task=task,
                    shard_id=shard_id,
                    num_shards=num_shards,
                    seed=derive_shard_seed(seed, shard_id),
                    params=_freeze_params(shard_params),
                )
            )
    elif task == "fig18":
        sizes = tuple(params.pop("sizes", (8, 64, 256)))
        timeouts = tuple(params.pop("timeouts", (0.5e-3, 5e-3)))
        cells = [
            (index, int(size), float(timeout))
            for index, (timeout, size) in enumerate(
                (t, s) for t in timeouts for s in sizes
            )
        ]
        if num_shards > len(cells):
            raise ValueError(
                f"cannot split {len(cells)} grid cells into {num_shards} shards"
            )
        base, extra = divmod(len(cells), num_shards)
        offset = 0
        for shard_id in range(num_shards):
            take = base + (1 if shard_id < extra else 0)
            shard_params = dict(
                params, cells=tuple(cells[offset : offset + take])
            )
            offset += take
            specs.append(
                ShardSpec(
                    task=task,
                    shard_id=shard_id,
                    num_shards=num_shards,
                    seed=derive_shard_seed(seed, shard_id),
                    params=_freeze_params(shard_params),
                )
            )
    elif task == "fleet":
        patterns = tuple(
            params.pop("patterns", ("crash", "partition", "flap", "cascade", "mixed"))
        )
        plans_per_pattern = int(params.pop("plans_per_pattern", 4))
        cells = [
            (index, pattern)
            for index, pattern in enumerate(
                p for p in patterns for _ in range(plans_per_pattern)
            )
        ]
        if num_shards > len(cells):
            raise ValueError(
                f"cannot split {len(cells)} fleet cells into {num_shards} shards"
            )
        base, extra = divmod(len(cells), num_shards)
        offset = 0
        for shard_id in range(num_shards):
            take = base + (1 if shard_id < extra else 0)
            shard_params = dict(params, cells=tuple(cells[offset : offset + take]))
            offset += take
            specs.append(
                ShardSpec(
                    task=task,
                    shard_id=shard_id,
                    num_shards=num_shards,
                    seed=derive_shard_seed(seed, shard_id),
                    params=_freeze_params(shard_params),
                )
            )
    else:  # chaos and test tasks: one derived seed per shard
        for shard_id in range(num_shards):
            specs.append(
                ShardSpec(
                    task=task,
                    shard_id=shard_id,
                    num_shards=num_shards,
                    seed=derive_shard_seed(seed, shard_id),
                    params=_freeze_params(params),
                )
            )
    return specs


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


def _run_serial(
    specs: Sequence[ShardSpec], retries: int
) -> Tuple[List[ShardResult], List[FailedShard]]:
    results: List[ShardResult] = []
    failed: List[FailedShard] = []
    for spec in specs:
        last_error = "unknown error"
        for _attempt in range(retries + 1):
            try:
                results.append(run_shard(spec))
                break
            except Exception:
                last_error = traceback.format_exc()
        else:
            failed.append(FailedShard(spec.shard_id, last_error))
    return results, failed


def _run_parallel(
    specs: Sequence[ShardSpec], workers: int, retries: int
) -> Tuple[List[ShardResult], List[FailedShard]]:
    """Run shards on a pool of spawned processes, one process per attempt.

    ``spawn`` (not fork) so workers import a pristine interpreter — the
    same environment the determinism tests pin — and a crashed worker
    cannot corrupt shared state.  Each attempt gets a fresh process; a
    shard whose worker dies (no result on the pipe) or raises is retried
    ``retries`` times, then recorded as failed.

    The wait set holds each worker's result pipe *and* its process
    sentinel: a payload bigger than the pipe buffer (recorders ship whole
    event rings) blocks the child's ``send`` until the parent drains it,
    so waiting on the sentinel alone would deadlock — the child cannot
    exit before the parent reads, and the parent would never read.
    """
    ctx = mp.get_context("spawn")
    pending = deque(specs)
    attempts: Dict[int, int] = {spec.shard_id: 0 for spec in specs}
    live: Dict[object, Tuple[ShardSpec, object, object]] = {}
    results: List[ShardResult] = []
    failed: List[FailedShard] = []
    while pending or live:
        while pending and len(live) < workers:
            spec = pending.popleft()
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main, args=(spec, send_end), daemon=True
            )
            proc.start()
            send_end.close()
            live[proc.sentinel] = (spec, proc, recv_end)
        waitables: List[object] = []
        for sentinel, (_spec, _proc, recv_end) in live.items():
            waitables.append(recv_end)
            waitables.append(sentinel)
        ready = set(mp.connection.wait(waitables))
        for sentinel in list(live):
            spec, proc, recv_end = live[sentinel]
            if sentinel not in ready and recv_end not in ready:
                continue
            del live[sentinel]
            payload = None
            try:
                if recv_end.poll():
                    payload = recv_end.recv()
            except (EOFError, OSError):
                payload = None
            finally:
                recv_end.close()
            proc.join()
            if payload is not None and payload[0] == "ok":
                results.append(payload[1])
                continue
            attempts[spec.shard_id] += 1
            if attempts[spec.shard_id] <= retries:
                pending.append(spec)
            else:
                reason = (
                    payload[1]
                    if payload is not None
                    else f"worker exited with code {proc.exitcode}"
                )
                failed.append(FailedShard(spec.shard_id, reason))
    return results, failed


def run_sharded(
    task: str,
    num_shards: int = 4,
    workers: Optional[int] = None,
    seed: int = 7,
    retries: int = 1,
    params: Optional[Dict[str, object]] = None,
) -> ShardedRunResult:
    """Run one experiment as ``num_shards`` deterministic shards.

    ``workers`` sizes the process pool (default: ``min(num_shards,``
    CPU count``)``); ``workers <= 1`` runs every shard in-process, which
    produces byte-identical results to any parallel pool because the
    shard layout and merge order are fixed by ``num_shards`` alone.
    """
    specs = make_shards(task, num_shards=num_shards, seed=seed, params=params)
    if workers is None:
        workers = min(num_shards, os.cpu_count() or 1)
    if workers <= 1:
        results, failed = _run_serial(specs, retries)
    else:
        results, failed = _run_parallel(specs, workers, retries)
    results.sort(key=lambda r: r.shard_id)
    failed.sort(key=lambda f: f.shard_id)
    registry = MetricRegistry.merged(
        (r.registry for r in results),
        labels={"task": task, "seed": str(seed)},
    )
    registry.counter(
        "parallel.shards_total", help="shards this run was split into"
    ).inc(num_shards)
    registry.counter(
        "parallel.shards_failed_total", help="shards that failed after retry"
    ).inc(len(failed))
    audit = AuditReport()
    for result in results:
        audit.merge(result.audit, label=f"shard-{result.shard_id}")
    counters: Dict[str, float] = {}
    for result in results:
        for key, value in result.counters.items():
            counters[key] = counters.get(key, 0.0) + value
    timeline = Timeline.merged(
        r.timeline for r in results if r.timeline is not None
    )
    recorder = FlightRecorder.merged(
        r.recorder for r in results if r.recorder is not None
    )
    return ShardedRunResult(
        task=task,
        seed=seed,
        num_shards=num_shards,
        workers=workers,
        shards=results,
        failed=failed,
        registry=registry,
        audit=audit,
        counters=counters,
        timeline=timeline,
        recorder=recorder,
    )
