"""Sharded parallel experiment replay with lossless metric merge.

The paper's evaluation replays hour-long PoP traces; at laptop scale a
single-process replay is the wall-clock bottleneck of the whole harness.
This module splits one seeded experiment into **deterministic shards** —
by (cluster, VIP) slice for the workload replays, by grid cell for the
TransitTable sweep, by derived seed for chaos runs — farms the shards out
to ``spawn``-ed worker processes, and merges the per-shard
:class:`~repro.obs.metrics.MetricRegistry` and
:class:`~repro.core.verify.AuditReport` objects back into one fleet view.

Design invariants, asserted by the test suite:

* **Shard layout is fixed by ``num_shards``**, never by ``workers``: the
  worker count only sizes the process pool.  An N-shard run therefore
  produces bit-identical merged fingerprints whether it ran on 1 or 8
  workers, and repeated runs with the same seeds are bit-identical.
* **Per-shard seeds are derived**, not shared: shard *i* replays with
  ``derive_shard_seed(seed, i)`` (a splitmix64 mix), so shards are
  statistically independent slices of the same experiment, and the union
  is statistically equivalent to — not a permutation of — the unsharded
  run.
* **Merges happen in shard order** (ascending ``shard_id``), so float
  accumulation is reproducible regardless of worker completion order.
* **Workers are expendable**: a crashed or failing shard is retried once
  (fresh process), then reported in ``failed`` without sinking the run.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import multiprocessing.connection
import os
import sys
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..asicsim.hashing import base_hash, mix64
from ..core.silkroad import SilkRoadSwitch
from ..core.verify import AuditReport, audit_switch
from ..obs.metrics import Gauge, Histogram, MetricRegistry
from ..obs.recorder import DEFAULT_RING_SIZE, FlightRecorder
from ..obs.timeline import Timeline, TimelineSampler
from ..options import DriverOptions, ObsOptions, UNSET, resolve_options

__all__ = [
    "FailedShard",
    "FleetPartitionedResult",
    "ShardResult",
    "ShardSpec",
    "ShardedRunResult",
    "derive_shard_seed",
    "make_shards",
    "partition_switches",
    "run_fleet_partitioned",
    "run_sharded",
]

logger = logging.getLogger(__name__)

#: Salt so shard seeds never collide with the base seed itself.
_SHARD_SEED_SALT = 0x51AB_D5EE_D000_0000


def derive_shard_seed(seed: int, shard_id: int) -> int:
    """A well-separated 63-bit seed for one shard of a seeded run.

    Splitmix64-mixes ``(seed, shard_id)`` so neighbouring shards (and
    neighbouring base seeds) get uncorrelated generator streams — the
    correlated-collision hazard the single-pass hash pipeline work already
    established for table hashing applies equally to workload RNGs.
    """
    if shard_id < 0:
        raise ValueError("shard_id must be non-negative")
    return mix64(shard_id ^ _SHARD_SEED_SALT, seed) >> 1


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a sharded run; picklable, fully self-describing.

    ``params`` is a flat tuple of ``(key, value)`` pairs (primitives and
    tuples only) so the spec survives the spawn pickle boundary and can be
    hashed/compared in tests.
    """

    task: str
    shard_id: int
    num_shards: int
    seed: int
    params: Tuple[Tuple[str, object], ...] = ()

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass
class ShardResult:
    """What one worker sends back: mergeable state only, no live objects."""

    shard_id: int
    registry: MetricRegistry
    audit: AuditReport
    counters: Dict[str, float] = field(default_factory=dict)
    #: metric timeline, when the run asked for ``timeline_period_s``.
    timeline: Optional[Timeline] = None
    #: flight recorder, when the run asked for ``record``.
    recorder: Optional[FlightRecorder] = None


@dataclass(frozen=True)
class FailedShard:
    shard_id: int
    reason: str


@dataclass
class ShardedRunResult:
    """The merged fleet view of one sharded run."""

    task: str
    seed: int
    num_shards: int
    workers: int
    shards: List[ShardResult]
    failed: List[FailedShard]
    registry: MetricRegistry
    audit: AuditReport
    counters: Dict[str, float]
    #: fold of every shard's timeline (``None`` unless the run asked for one).
    timeline: Optional[Timeline] = None
    #: fold of every shard's recorder (``None`` unless the run asked for one).
    recorder: Optional[FlightRecorder] = None

    @property
    def fingerprint(self) -> str:
        return self.registry.fingerprint()

    @property
    def timeline_fingerprint(self) -> Optional[str]:
        return self.timeline.fingerprint() if self.timeline is not None else None

    @property
    def ok(self) -> bool:
        return self.audit.ok and not self.failed

    def summary(self) -> str:
        state = "ok" if self.ok else "FAILED"
        failed = (
            f", {len(self.failed)} shards failed" if self.failed else ""
        )
        return (
            f"{self.task}[seed={self.seed}]: {len(self.shards)}/"
            f"{self.num_shards} shards on {self.workers} workers {state}"
            f" ({self.audit.checks_run} checks, "
            f"{len(self.audit.violations)} violations{failed}), "
            f"fingerprint {self.fingerprint[:16]}"
        )


# ----------------------------------------------------------------------
# Shard bodies (run inside worker processes; must be module-level so the
# spawn start method can re-import them)
# ----------------------------------------------------------------------


def _fold_prefixed(
    target: MetricRegistry, source: MetricRegistry, prefix: str
) -> None:
    """Fold ``source`` into ``target`` under a name prefix.

    Used to keep two systems' switches (e.g. ``silkroad`` and
    ``silkroad-no-transittable``) from colliding on identical instrument
    names inside one shard registry.
    """
    for name, theirs in source.instruments():
        pname = f"{prefix}.{name}"
        if isinstance(theirs, Histogram):
            ours = target.histogram(pname, buckets=theirs.bounds, help=theirs.help)
        elif isinstance(theirs, Gauge):
            ours = target.gauge(pname, help=theirs.help)
        else:
            ours = target.counter(pname, help=theirs.help)
        ours.merge_from(theirs)


def _shard_registry(spec: ShardSpec) -> MetricRegistry:
    return MetricRegistry(
        labels={"task": spec.task, "shard": str(spec.shard_id)}
    )


def _make_attach(
    spec: ShardSpec,
    scope: str,
    horizon_s: float,
    timeline_period_s: Optional[float],
    record: bool,
    samplers: List[TimelineSampler],
    recorders: List[FlightRecorder],
    record_capacity: int = DEFAULT_RING_SIZE,
):
    """Build the ``replay(attach=...)`` hook instrumenting one replay.

    The hook duck-types the LB: recorders only attach to switches exposing
    ``attach_recorder`` and samplers only arm when the LB carries a metric
    registry (the Duet baseline has neither).  Samplers use ``scope.`` as
    the column prefix — the same namespace :func:`_fold_prefixed` gives the
    merged registry — and recorders are tagged ``s<shard>.<scope>`` so the
    fleet-wide merge stays attributable.  Returns ``None`` when nothing
    was requested, keeping the replay hook-free (and the hot path
    untouched).
    """
    if timeline_period_s is None and not record:
        return None
    recorder = (
        FlightRecorder(capacity=record_capacity, source=f"s{spec.shard_id}.{scope}")
        if record
        else None
    )

    def attach(sim, lb) -> None:
        if recorder is not None and hasattr(lb, "attach_recorder"):
            lb.attach_recorder(recorder)
            recorders.append(recorder)
        metrics = getattr(lb, "metrics", None)
        if timeline_period_s is not None and metrics is not None:
            sampler = TimelineSampler(
                metrics, float(timeline_period_s), prefix=f"{scope}."
            )
            sampler.attach(sim.queue, horizon_s=horizon_s)
            samplers.append(sampler)

    return attach


def _shard_options(p: Dict[str, object]) -> Tuple[DriverOptions, ObsOptions]:
    """Decode a shard's driver/obs options from its frozen params.

    Shard params stay flat primitives (they cross the spawn pickle
    boundary inside :class:`ShardSpec`); this is the one place the scalar
    keys turn back into the public options dataclasses.  Missing keys get
    the dataclass defaults, so specs frozen before the options existed
    replay identically.
    """
    timeline_period = p.get("timeline_period_s")
    return (
        DriverOptions(
            batched=bool(p.get("batched", True)),
            batch_size=int(p.get("batch_size", 256)),
        ),
        ObsOptions(
            record=bool(p.get("record", False)),
            record_capacity=int(p.get("record_capacity", DEFAULT_RING_SIZE)),
            timeline_period_s=(
                float(timeline_period) if timeline_period is not None else None
            ),
        ),
    )


def _run_fig16_shard(spec: ShardSpec) -> ShardResult:
    """Replay this shard's VIP slice of a Figure-16-style workload.

    Both workload generators take *total* rates that they split across
    VIPs, so a shard holding ``k`` of ``V`` VIPs scales both the arrival
    knob (``scale``) and the update rate by ``k/V`` — the union of all
    shards then carries the full experiment's load.
    """
    from . import fig16
    from .common import build_workload

    p = spec.param_dict()
    total_vips = int(p["total_vips"])
    shard_vips = int(p["shard_vips"])
    frac = shard_vips / total_vips
    systems = tuple(p.get("systems", ("duet", "silkroad-no-transittable", "silkroad")))
    workload = build_workload(
        updates_per_min=float(p.get("updates_per_min", 10.0)) * frac,
        scale=float(p.get("scale", 1.0)) * frac,
        seed=spec.seed,
        horizon_s=float(p.get("horizon_s", 120.0)),
        warmup_s=float(p.get("warmup_s", 20.0)),
        num_vips=shard_vips,
    )
    factories = fig16.default_systems(
        insertion_rate_per_s=float(p.get("insertion_rate_per_s", 20_000.0))
    )
    driver, obs = _shard_options(p)
    registry = _shard_registry(spec)
    audit = AuditReport()
    counters: Dict[str, float] = {}
    samplers: List[TimelineSampler] = []
    recorders: List[FlightRecorder] = []
    for name in systems:
        attach = _make_attach(
            spec,
            name,
            workload.horizon_s,
            obs.timeline_period_s,
            obs.record,
            samplers,
            recorders,
            record_capacity=obs.record_capacity,
        )
        report, conns, lb = workload.replay(
            factories[name],
            attach=attach,
            batched=driver.batched,
            batch_size=driver.batch_size,
        )
        scope = registry.scope(name)
        scope.counter(
            "pcc_violations_total", help="connections that broke PCC"
        ).inc(report.pcc_violations)
        scope.counter(
            "measured_connections_total", help="connections in the window"
        ).inc(report.measured_connections)
        scope.counter(
            "connections_total", help="all replayed connections"
        ).inc(report.total_connections)
        counters[f"{name}.pcc_violations"] = float(report.pcc_violations)
        counters[f"{name}.measured_connections"] = float(
            report.measured_connections
        )
        if isinstance(lb, SilkRoadSwitch):
            audit.merge(audit_switch(lb, connections=conns), label=name)
            _fold_prefixed(registry, lb.metrics, name)
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=audit,
        counters=counters,
        timeline=Timeline.merged(s.timeline for s in samplers),
        recorder=FlightRecorder.merged(recorders),
    )


def _run_fig18_shard(spec: ShardSpec) -> ShardResult:
    """Run this shard's cells of the (filter size x timeout) grid.

    Each cell is seeded by its index in the *full* grid, so the merged
    result does not depend on how cells were grouped into shards.
    """
    from .common import build_workload, silkroad_factory

    p = spec.param_dict()
    driver, obs = _shard_options(p)
    registry = _shard_registry(spec)
    audit = AuditReport()
    counters: Dict[str, float] = {}
    samplers: List[TimelineSampler] = []
    recorders: List[FlightRecorder] = []
    for cell_index, size, timeout_s in p["cells"]:
        workload = build_workload(
            updates_per_min=float(p.get("updates_per_min", 30.0)),
            scale=float(p.get("scale", 1.0)),
            seed=derive_shard_seed(spec.seed, 1_000 + int(cell_index)),
            horizon_s=float(p.get("horizon_s", 60.0)),
            warmup_s=float(p.get("warmup_s", 10.0)),
            arrival_scale=float(p.get("arrival_scale", 16.0)),
            num_vips=int(p.get("num_vips", 2)),
        )
        factory = silkroad_factory(
            use_transit_table=True,
            transit_table_bytes=int(size),
            learning_timeout_s=float(timeout_s),
            insertion_rate_per_s=float(p.get("insertion_rate_per_s", 50_000.0)),
            conn_table_capacity=int(p.get("conn_table_capacity", 600_000)),
            name=f"silkroad-{int(size)}B",
        )
        cell = f"cell{int(cell_index):02d}"
        attach = _make_attach(
            spec,
            cell,
            workload.horizon_s,
            obs.timeline_period_s,
            obs.record,
            samplers,
            recorders,
            record_capacity=obs.record_capacity,
        )
        report, conns, lb = workload.replay(
            factory,
            attach=attach,
            batched=driver.batched,
            batch_size=driver.batch_size,
        )
        scope = registry.scope(cell)
        scope.counter(
            "pcc_violations_total", help="connections that broke PCC"
        ).inc(report.pcc_violations)
        scope.counter(
            "transit_fp_adopted_total", help="old-version adoptions via Bloom FP"
        ).inc(float(lb.transit_fp_adopted))
        counters[f"{cell}.pcc_violations"] = float(report.pcc_violations)
        counters[f"{cell}.transit_fp_adopted"] = float(lb.transit_fp_adopted)
        audit.merge(audit_switch(lb, connections=conns), label=cell)
        _fold_prefixed(registry, lb.metrics, cell)
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=audit,
        counters=counters,
        timeline=Timeline.merged(s.timeline for s in samplers),
        recorder=FlightRecorder.merged(recorders),
    )


def _run_chaos_shard(spec: ShardSpec) -> ShardResult:
    """One independent chaos run under this shard's derived seed."""
    from ..faults.chaos import run_chaos

    p = spec.param_dict()
    driver, obs = _shard_options(p)
    result = run_chaos(
        seed=spec.seed,
        scale=float(p.get("scale", 0.05)),
        horizon_s=float(p.get("horizon_s", 20.0)),
        warmup_s=float(p.get("warmup_s", 2.0)),
        updates_per_min=float(p.get("updates_per_min", 60.0)),
        faults_per_min=float(p.get("faults_per_min", 30.0)),
        driver=driver,
        obs=replace(obs, record_source=f"s{spec.shard_id}.chaos"),
    )
    registry = _shard_registry(spec)
    scope = registry.scope("chaos")
    scope.counter("faults_injected_total", help="faults in the plan").inc(
        len(result.plan)
    )
    scope.counter(
        "pcc_violations_total", help="connections that broke PCC"
    ).inc(result.report.pcc_violations)
    scope.counter(
        "overdue_updates_total", help="updates that overran the watchdog"
    ).inc(result.overdue_updates)
    registry.merge(result.switch.metrics)
    counters = {
        "faults_injected": float(len(result.plan)),
        "pcc_violations": float(result.report.pcc_violations),
        "overdue_updates": float(result.overdue_updates),
    }
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=result.audit,
        counters=counters,
        timeline=result.timeline,
        recorder=result.recorder,
    )


def _fleet_cell_seed(base_seed: int, pattern: str, plan_index: int, salt: int) -> int:
    """The derived seed of one ``(pattern, plan_index)`` fleet cell.

    Keyed by the *content* of the cell — the pattern name's hash and the
    plan index — never by the cell's position in the sweep, so permuting
    the ``patterns`` tuple (or regrouping cells into shards) cannot
    silently change any cell's workload or fault plan.
    """
    pattern_h = base_hash(str(pattern).encode("utf-8"))
    return derive_shard_seed(base_seed, mix64(pattern_h, salt + plan_index) >> 1)


def _run_fleet_shard(spec: ShardSpec) -> ShardResult:
    """Run this shard's cells of the fleet-chaos survival sweep.

    A cell is one ``(pattern, plan_index)`` fleet run, seeded from the
    sweep's base seed and the cell's own identity (see
    :func:`_fleet_cell_seed`), so merged fingerprints depend only on the
    set of cells — never on worker count, shard count or the order the
    patterns were listed in.  The merged audit carries the fleet
    attribution requirement: any unattributed PCC violation or drop in
    any cell surfaces as a violation labelled with that cell.
    """
    from ..faults.fleet import run_fleet

    p = spec.param_dict()
    driver, obs = _shard_options(p)
    registry = _shard_registry(spec)
    audit = AuditReport()
    counters: Dict[str, float] = {}
    timelines: List[Timeline] = []
    recorders: List[FlightRecorder] = []
    base_seed = int(p.get("base_seed", spec.seed))
    for pattern, plan_index in p["cells"]:
        cell = f"{pattern}{int(plan_index):02d}"
        result = run_fleet(
            seed=_fleet_cell_seed(base_seed, pattern, int(plan_index), 20_000),
            fault_seed=_fleet_cell_seed(base_seed, pattern, int(plan_index), 30_000),
            pattern=str(pattern),
            num_switches=int(p.get("num_switches", 4)),
            scale=float(p.get("scale", 0.05)),
            horizon_s=float(p.get("horizon_s", 20.0)),
            warmup_s=float(p.get("warmup_s", 2.0)),
            updates_per_min=float(p.get("updates_per_min", 60.0)),
            faults_per_min=float(p.get("faults_per_min", 4.0)),
            replication=p.get("replication"),
            conn_budget=p.get("conn_budget"),
            driver=driver,
            obs=replace(obs, record_source=f"s{spec.shard_id}.{cell}"),
        )
        audit.merge(result.audit.audit, label=cell)
        audit.checks_run += 2
        if result.audit.unattributed_violations:
            audit.violations.append(
                f"[{cell}] {result.audit.unattributed_violations} PCC "
                "violations with no fleet attribution"
            )
        if result.audit.unattributed_drops:
            audit.violations.append(
                f"[{cell}] {result.audit.unattributed_drops} dropped "
                "connections with no fleet attribution"
            )
        survival = result.survival
        for key in ("measured", "kept", "broken", "blackholed"):
            counters[f"{pattern}.{key}"] = (
                counters.get(f"{pattern}.{key}", 0.0) + float(survival[key])
            )
        counters[f"{pattern}.shed"] = counters.get(
            f"{pattern}.shed", 0.0
        ) + float(result.fleet.shed_connections)
        scope = registry.scope(cell)
        scope.counter(
            "pcc_broken_total", help="measured connections that broke PCC"
        ).inc(survival["broken"])
        scope.counter(
            "blackholed_total", help="measured connections blackholed intact"
        ).inc(survival["blackholed"])
        _fold_prefixed(registry, result.fleet.merged_registry(), cell)
        if result.timeline is not None:
            timelines.append(result.timeline)
        if result.recorder is not None:
            recorders.append(result.recorder)
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=audit,
        counters=counters,
        timeline=Timeline.merged(timelines) if timelines else None,
        recorder=FlightRecorder.merged(recorders) if recorders else None,
    )


def _run_crashy_shard(spec: ShardSpec) -> ShardResult:
    """Test-only task exercising the fault-tolerance path.

    ``crash_once_marker`` names a file: on the first attempt the worker
    creates it and dies without a word (``os._exit``), on the retry it
    succeeds — so tests can pin the retry-once contract.  With
    ``always_fail`` the shard raises every time and must end up in
    ``failed``.
    """
    p = spec.param_dict()
    if p.get("always_fail"):
        raise RuntimeError(f"shard {spec.shard_id} told to fail")
    marker = p.get("crash_once_marker")
    if marker and not os.path.exists(str(marker)):
        with open(str(marker), "w") as fh:
            fh.write(str(spec.shard_id))
        os._exit(3)
    registry = _shard_registry(spec)
    registry.counter("crashy.completions_total").inc()
    return ShardResult(
        shard_id=spec.shard_id,
        registry=registry,
        audit=AuditReport(),
        counters={"completions": 1.0},
    )


_TASKS: Dict[str, Callable[[ShardSpec], ShardResult]] = {
    "fig16": _run_fig16_shard,
    "fig18": _run_fig18_shard,
    "chaos": _run_chaos_shard,
    "fleet": _run_fleet_shard,
    "_crashy": _run_crashy_shard,
}


def run_shard(spec: ShardSpec) -> ShardResult:
    """Execute one shard in the current process."""
    try:
        body = _TASKS[spec.task]
    except KeyError:
        raise ValueError(
            f"unknown shard task {spec.task!r} (have {sorted(_TASKS)})"
        ) from None
    return body(spec)


def _worker_main(spec: ShardSpec, conn) -> None:
    """Spawned worker entrypoint: run one shard, ship the result back.

    The failure path must never go silent: if the error payload itself
    cannot be shipped (parent gone, pipe broken), the traceback is written
    to stderr and the exception re-raised so the worker dies loudly with a
    non-zero exit code — the parent then reports ``worker exited with
    code N`` instead of dropping the evidence.
    """
    try:
        result = run_shard(spec)
        conn.send(("ok", result))
    except BaseException:
        tb = traceback.format_exc()
        try:
            conn.send(("error", tb))
        except Exception:
            sys.stderr.write(
                f"[parallel] shard {spec.shard_id} failed and the error "
                f"pipe is dead; traceback follows\n{tb}"
            )
            sys.stderr.flush()
            raise
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Shard layout
# ----------------------------------------------------------------------


def _freeze_params(params: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(params.items()))


def make_shards(
    task: str,
    num_shards: int,
    seed: int,
    params: Optional[Dict[str, object]] = None,
) -> List[ShardSpec]:
    """The deterministic shard layout of one run.

    Depends only on ``(task, num_shards, seed, params)`` — never on worker
    count or machine — which is what makes merged fingerprints comparable
    across pool sizes.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if task not in _TASKS:
        raise ValueError(f"unknown shard task {task!r} (have {sorted(_TASKS)})")
    params = dict(params or {})
    specs: List[ShardSpec] = []
    if task == "fig16":
        total_vips = int(params.pop("num_vips", 8))
        if num_shards > total_vips:
            raise ValueError(
                f"cannot split {total_vips} VIPs into {num_shards} shards"
            )
        base, extra = divmod(total_vips, num_shards)
        for shard_id in range(num_shards):
            shard_vips = base + (1 if shard_id < extra else 0)
            shard_params = dict(
                params, total_vips=total_vips, shard_vips=shard_vips
            )
            specs.append(
                ShardSpec(
                    task=task,
                    shard_id=shard_id,
                    num_shards=num_shards,
                    seed=derive_shard_seed(seed, shard_id),
                    params=_freeze_params(shard_params),
                )
            )
    elif task == "fig18":
        sizes = tuple(params.pop("sizes", (8, 64, 256)))
        timeouts = tuple(params.pop("timeouts", (0.5e-3, 5e-3)))
        cells = [
            (index, int(size), float(timeout))
            for index, (timeout, size) in enumerate(
                (t, s) for t in timeouts for s in sizes
            )
        ]
        if num_shards > len(cells):
            raise ValueError(
                f"cannot split {len(cells)} grid cells into {num_shards} shards"
            )
        base, extra = divmod(len(cells), num_shards)
        offset = 0
        for shard_id in range(num_shards):
            take = base + (1 if shard_id < extra else 0)
            shard_params = dict(
                params, cells=tuple(cells[offset : offset + take])
            )
            offset += take
            specs.append(
                ShardSpec(
                    task=task,
                    shard_id=shard_id,
                    num_shards=num_shards,
                    seed=derive_shard_seed(seed, shard_id),
                    params=_freeze_params(shard_params),
                )
            )
    elif task == "fleet":
        patterns = tuple(
            params.pop("patterns", ("crash", "partition", "flap", "cascade", "mixed"))
        )
        plans_per_pattern = int(params.pop("plans_per_pattern", 4))
        # Cells are identified by (pattern, plan_index), not sweep position:
        # _fleet_cell_seed keys each cell's seeds off this identity, so a
        # permuted ``patterns`` tuple yields the same per-cell runs (and the
        # same merged fingerprint) in a different merge order — and the merge
        # itself is order-insensitive for counters and registry folds.
        cells = [
            (pattern, plan_index)
            for pattern in patterns
            for plan_index in range(plans_per_pattern)
        ]
        if num_shards > len(cells):
            raise ValueError(
                f"cannot split {len(cells)} fleet cells into {num_shards} shards"
            )
        base, extra = divmod(len(cells), num_shards)
        offset = 0
        for shard_id in range(num_shards):
            take = base + (1 if shard_id < extra else 0)
            shard_params = dict(
                params,
                cells=tuple(cells[offset : offset + take]),
                base_seed=int(seed),
            )
            offset += take
            specs.append(
                ShardSpec(
                    task=task,
                    shard_id=shard_id,
                    num_shards=num_shards,
                    seed=derive_shard_seed(seed, shard_id),
                    params=_freeze_params(shard_params),
                )
            )
    else:  # chaos and test tasks: one derived seed per shard
        for shard_id in range(num_shards):
            specs.append(
                ShardSpec(
                    task=task,
                    shard_id=shard_id,
                    num_shards=num_shards,
                    seed=derive_shard_seed(seed, shard_id),
                    params=_freeze_params(params),
                )
            )
    return specs


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


def _run_serial(
    specs: Sequence[ShardSpec], retries: int
) -> Tuple[List[ShardResult], List[FailedShard], int]:
    """In-process driver.  Returns ``(results, failed, error_attempts)``.

    Every failed attempt — retried or terminal — is logged with its
    traceback and counted, so a flaky shard leaves evidence even when the
    retry ultimately succeeds.
    """
    results: List[ShardResult] = []
    failed: List[FailedShard] = []
    errors = 0
    for spec in specs:
        last_error = "unknown error"
        for attempt in range(retries + 1):
            try:
                results.append(run_shard(spec))
                break
            except Exception:
                last_error = traceback.format_exc()
                errors += 1
                logger.warning(
                    "shard %d attempt %d/%d failed:\n%s",
                    spec.shard_id,
                    attempt + 1,
                    retries + 1,
                    last_error,
                )
        else:
            logger.error(
                "shard %d failed after %d attempts", spec.shard_id, retries + 1
            )
            failed.append(FailedShard(spec.shard_id, last_error))
    return results, failed, errors


def _run_parallel(
    specs: Sequence[ShardSpec], workers: int, retries: int
) -> Tuple[List[ShardResult], List[FailedShard], int]:
    """Run shards on a pool of spawned processes, one process per attempt.

    Returns ``(results, failed, error_attempts)``; every failed attempt is
    logged with whatever evidence survived (the shipped traceback, or the
    worker's exit code when the process died before sending one).

    ``spawn`` (not fork) so workers import a pristine interpreter — the
    same environment the determinism tests pin — and a crashed worker
    cannot corrupt shared state.  Each attempt gets a fresh process; a
    shard whose worker dies (no result on the pipe) or raises is retried
    ``retries`` times, then recorded as failed.

    The wait set holds each worker's result pipe *and* its process
    sentinel: a payload bigger than the pipe buffer (recorders ship whole
    event rings) blocks the child's ``send`` until the parent drains it,
    so waiting on the sentinel alone would deadlock — the child cannot
    exit before the parent reads, and the parent would never read.
    """
    ctx = mp.get_context("spawn")
    pending = deque(specs)
    attempts: Dict[int, int] = {spec.shard_id: 0 for spec in specs}
    live: Dict[object, Tuple[ShardSpec, object, object]] = {}
    results: List[ShardResult] = []
    failed: List[FailedShard] = []
    errors = 0
    while pending or live:
        while pending and len(live) < workers:
            spec = pending.popleft()
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main, args=(spec, send_end), daemon=True
            )
            proc.start()
            send_end.close()
            live[proc.sentinel] = (spec, proc, recv_end)
        waitables: List[object] = []
        for sentinel, (_spec, _proc, recv_end) in live.items():
            waitables.append(recv_end)
            waitables.append(sentinel)
        ready = set(mp.connection.wait(waitables))
        for sentinel in list(live):
            spec, proc, recv_end = live[sentinel]
            if sentinel not in ready and recv_end not in ready:
                continue
            del live[sentinel]
            payload = None
            try:
                if recv_end.poll():
                    payload = recv_end.recv()
            except (EOFError, OSError):
                payload = None
            finally:
                recv_end.close()
            proc.join()
            if payload is not None and payload[0] == "ok":
                results.append(payload[1])
                continue
            errors += 1
            reason = (
                payload[1]
                if payload is not None
                else f"worker exited with code {proc.exitcode}"
            )
            attempts[spec.shard_id] += 1
            if attempts[spec.shard_id] <= retries:
                logger.warning(
                    "shard %d attempt %d/%d failed, retrying:\n%s",
                    spec.shard_id,
                    attempts[spec.shard_id],
                    retries + 1,
                    reason,
                )
                pending.append(spec)
            else:
                logger.error(
                    "shard %d failed after %d attempts:\n%s",
                    spec.shard_id,
                    retries + 1,
                    reason,
                )
                failed.append(FailedShard(spec.shard_id, reason))
    return results, failed, errors


def run_sharded(
    task: str,
    num_shards: int = 4,
    workers: Optional[int] = None,
    seed: int = 7,
    retries: int = 1,
    params: Optional[Dict[str, object]] = None,
    strict: bool = False,
    driver: Optional[DriverOptions] = None,
    obs: Optional[ObsOptions] = None,
) -> ShardedRunResult:
    """Run one experiment as ``num_shards`` deterministic shards.

    ``workers`` sizes the process pool (default: ``min(num_shards,``
    CPU count``)``); ``workers <= 1`` runs every shard in-process, which
    produces byte-identical results to any parallel pool because the
    shard layout and merge order are fixed by ``num_shards`` alone.

    ``driver``/``obs`` carry the shared replay-driver and observability
    knobs; they are flattened into the shard params as the scalar keys the
    shard bodies read (an explicit key already in ``params`` wins), so
    :class:`ShardSpec` stays a picklable bag of primitives.

    Every failed attempt is logged and counted in
    ``parallel.worker_errors_total``; shards still failing after the
    retry budget land in ``result.failed`` — or, with ``strict=True``,
    raise :class:`RuntimeError` carrying every terminal traceback.
    """
    if driver is not None or obs is not None:
        driver, obs = resolve_options(driver, obs)
        params = dict(params or {})
        params.setdefault("batched", driver.batched)
        params.setdefault("batch_size", driver.batch_size)
        params.setdefault("record", obs.record)
        params.setdefault("record_capacity", obs.record_capacity)
        params.setdefault("timeline_period_s", obs.timeline_period_s)
    specs = make_shards(task, num_shards=num_shards, seed=seed, params=params)
    if workers is None:
        workers = min(num_shards, os.cpu_count() or 1)
    if workers <= 1:
        results, failed, errors = _run_serial(specs, retries)
    else:
        results, failed, errors = _run_parallel(specs, workers, retries)
    results.sort(key=lambda r: r.shard_id)
    failed.sort(key=lambda f: f.shard_id)
    if strict and failed:
        details = "\n".join(
            f"--- shard {f.shard_id} ---\n{f.reason}" for f in failed
        )
        raise RuntimeError(
            f"{len(failed)} shard(s) failed after {retries + 1} attempt(s) "
            f"in {task}[seed={seed}]:\n{details}"
        )
    registry = MetricRegistry.merged(
        (r.registry for r in results),
        labels={"task": task, "seed": str(seed)},
    )
    registry.counter(
        "parallel.shards_total", help="shards this run was split into"
    ).inc(num_shards)
    registry.counter(
        "parallel.shards_failed_total", help="shards that failed after retry"
    ).inc(len(failed))
    registry.counter(
        "parallel.worker_errors_total",
        help="failed shard attempts (including retried ones)",
    ).inc(errors)
    audit = AuditReport()
    for result in results:
        audit.merge(result.audit, label=f"shard-{result.shard_id}")
    counters: Dict[str, float] = {}
    for result in results:
        for key, value in result.counters.items():
            counters[key] = counters.get(key, 0.0) + value
    timeline = Timeline.merged(
        r.timeline for r in results if r.timeline is not None
    )
    recorder = FlightRecorder.merged(
        r.recorder for r in results if r.recorder is not None
    )
    return ShardedRunResult(
        task=task,
        seed=seed,
        num_shards=num_shards,
        workers=workers,
        shards=results,
        failed=failed,
        registry=registry,
        audit=audit,
        counters=counters,
        timeline=timeline,
        recorder=recorder,
    )


# ----------------------------------------------------------------------
# Space-partitioned fleet execution (one simulation, many workers)
# ----------------------------------------------------------------------
#
# `run_sharded` above parallelizes *bags* of runs; `run_fleet_partitioned`
# parallelizes the inside of ONE `FleetSilkRoad` run.  The design is
# replicated control plane / partitioned data plane:
#
# * Every worker replays the *entire* deterministic simulation — the same
#   workload, fault plan, controller heartbeats, declare-downs, re-homes,
#   reassignment steps and shedding decisions — so cross-partition control
#   events need no migration protocol: each replica computes them locally
#   from replicated state, in the identical event order.
# * Each worker *materializes* only its `FleetPartition.owned` switches;
#   the rest are `_PhantomSwitch` stand-ins that mirror the clock advance
#   but simulate nothing.  The expensive part of a fleet run — per-packet
#   ConnTable/Bloom work inside `SilkRoadSwitch` — is therefore split
#   `1/W` per worker.
# * Lockstep epochs, bounded by `partition_epoch_length` (the minimum
#   cross-partition latency: heartbeat interval, announce delay, drain
#   window), are barriers at which replicas exchange `epoch_digest()` —
#   a running journal of every cross-partition event class plus the
#   replicated-state sizes.  Equal digests prove the replicas agree;
#   any divergence aborts the run at the epoch that exposed it rather
#   than yielding silently wrong merged results.
# * Observability stays pairwise disjoint by construction (fleet-scope
#   instruments and cause maps on the primary replica, per-switch
#   instruments/recorders/audits on the owner), so the merged
#   MetricRegistry / Timeline / FlightRecorder / FleetAuditReport are
#   bit-identical for every worker count.


def partition_switches(
    num_switches: int, num_workers: int
) -> List[Tuple[int, ...]]:
    """Contiguous switch ranges, one per worker, sizes differing by <= 1.

    Depends only on ``(num_switches, num_workers)``, mirroring
    :func:`make_shards`: the layout is what fixes which replica owns which
    data plane, and it must never depend on machine or pool state.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    if num_workers > num_switches:
        raise ValueError(
            f"cannot split {num_switches} switches across {num_workers} workers"
        )
    base, extra = divmod(num_switches, num_workers)
    owned_sets: List[Tuple[int, ...]] = []
    offset = 0
    for worker_id in range(num_workers):
        take = base + (1 if worker_id < extra else 0)
        owned_sets.append(tuple(range(offset, offset + take)))
        offset += take
    return owned_sets


def _partition_epochs(horizon_s: float, epoch_s: float) -> int:
    """How many barriers fit strictly inside ``[0, horizon_s]``.

    The epsilon absorbs float division noise so e.g. a 20 s horizon over
    0.05 s epochs yields exactly 400 barriers on every replica.
    """
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive")
    return max(0, int(horizon_s / epoch_s + 1e-9))


@dataclass
class _PartitionPartial:
    """One replica's mergeable share of a partitioned fleet run."""

    worker_id: int
    owned: Tuple[int, ...]
    registry: MetricRegistry
    #: structural audit of the owned instances (labelled ``sw<i>g<gen>``).
    audit: AuditReport
    #: per-switch attribution-prediction keys from the owned instances.
    predicted: Set[bytes]
    #: per-connection outcome rows (key, dips, dropped, broken, start).
    outcomes: List[Tuple[bytes, Tuple[str, ...], bool, bool, float]]
    #: fleet cause maps; authoritative on the primary replica, else None.
    move_causes: Optional[Dict[bytes, str]]
    drop_causes: Optional[Dict[bytes, str]]
    #: fleet counters (primary only) — replicated, so one copy suffices.
    counters: Dict[str, float]
    #: live ConnTable entries of the owned, dataplane-up switches.
    conn_entries: Dict[str, float]
    #: every (epoch, digest) this replica produced, final state included.
    epoch_digests: Tuple[Tuple[int, Tuple[int, ...]], ...]
    timeline: Optional[Timeline] = None
    recorder: Optional[FlightRecorder] = None


@dataclass
class FleetPartitionedResult:
    """The merged view of one space-partitioned fleet run."""

    pattern: str
    seed: int
    fault_seed: int
    num_switches: int
    workers: int
    partitions: List[Tuple[int, ...]]
    #: lockstep barriers the run crossed (0 when the horizon is short).
    epochs: int
    epoch_length_s: float
    registry: MetricRegistry
    audit: "object"  # FleetAuditReport; typed loosely to avoid the import cycle
    survival: Dict[str, int]
    counters: Dict[str, float]
    timeline: Optional[Timeline] = None
    recorder: Optional[FlightRecorder] = None

    @property
    def fingerprint(self) -> str:
        return self.registry.fingerprint()

    @property
    def audit_fingerprint(self) -> str:
        return self.audit.fingerprint()

    @property
    def timeline_fingerprint(self) -> Optional[str]:
        return self.timeline.fingerprint() if self.timeline is not None else None

    @property
    def ok(self) -> bool:
        return self.audit.ok

    def summary(self) -> str:
        s = self.survival
        return (
            f"fleet-partition[{self.pattern}/{self.seed}] x{self.workers} "
            f"workers ({self.epochs} epochs of {self.epoch_length_s}s): "
            f"{s['measured']} measured — {s['kept']} kept, "
            f"{s['broken']} broken, {s['blackholed']} blackholed, "
            f"audit {'ok' if self.ok else 'FAILED'}, "
            f"fingerprint {self.fingerprint[:16]}"
        )


def _run_partition_replica(
    worker_id: int,
    owned: Tuple[int, ...],
    num_workers: int,
    barrier: Optional[Callable[[int, Tuple[int, ...]], None]],
    run_kwargs: Dict[str, object],
) -> _PartitionPartial:
    """Replay the full fleet simulation as partition replica ``worker_id``.

    ``barrier(epoch, digest)`` is called at every epoch boundary (spawn
    mode blocks in it until the parent has cross-checked all replicas;
    in-process mode passes ``None`` and digests are verified post-hoc at
    merge).  Barrier events are scheduled *up front*, before the replay
    starts: they shift every simulation event's heap sequence number by
    the same constant on every replica, so pairwise event ordering — and
    with it every simulated outcome — is unchanged by the epoch count.
    """
    from ..deploy.fleet import (
        FleetPartition,
        FleetSilkRoad,
        collect_structural,
        connection_outcomes,
        partition_epoch_length,
    )
    from ..faults.fleet import FleetFaultInjector, resolve_fleet_run
    from ..netsim.simulator import PRIO_INTERNAL

    kw = dict(run_kwargs)
    record = bool(kw.pop("record", False))
    record_capacity = int(kw.pop("record_capacity", DEFAULT_RING_SIZE))
    timeline_period_s = kw.pop("timeline_period_s", None)
    batched = bool(kw.pop("batched", True))
    batch_size = int(kw.pop("batch_size", 256))
    num_switches = int(kw["num_switches"])
    workload, plan, config, fleet_config, _fault_seed = resolve_fleet_run(**kw)
    partition = FleetPartition(
        owned=tuple(owned), worker_id=worker_id, num_workers=num_workers
    )
    injector = FleetFaultInjector(plan)
    epoch_s = partition_epoch_length(fleet_config)
    epochs = _partition_epochs(workload.horizon_s, epoch_s)
    digests: List[Tuple[int, Tuple[int, ...]]] = []
    samplers: List[TimelineSampler] = []

    def attach(sim, lb) -> None:
        if record:
            lb.attach_partition_recorders(record_capacity)
        if timeline_period_s is not None:
            sampler = TimelineSampler(lb.metrics, float(timeline_period_s))
            sampler.attach(sim.queue, horizon_s=workload.horizon_s)
            samplers.append(sampler)
        for k in range(1, epochs + 1):

            def fire(kk: int = k, fleet=lb) -> None:
                digest = fleet.epoch_digest()
                digests.append((kk, digest))
                if barrier is not None:
                    barrier(kk, digest)

            sim.queue.schedule(k * epoch_s, fire, PRIO_INTERNAL)

    _report, connections, fleet = workload.replay(
        lambda: FleetSilkRoad(
            num_switches=num_switches,
            config=config,
            fleet_config=fleet_config,
            partition=partition,
        ),
        faults=injector,
        attach=attach,
        batched=batched,
        batch_size=batch_size,
    )
    # Final-state digest: catches divergence after the last barrier.
    digests.append((epochs + 1, fleet.epoch_digest()))
    structural, predicted = collect_structural(fleet)
    fleet_report = fleet.report()
    conn_entries = {
        key: value
        for key, value in fleet_report.items()
        if key.endswith("_conn_entries") and key != "fleet_conn_entries"
    }
    counters: Dict[str, float] = {}
    move_causes: Optional[Dict[bytes, str]] = None
    drop_causes: Optional[Dict[bytes, str]] = None
    if partition.primary:
        move_causes = dict(fleet._move_cause)
        drop_causes = dict(fleet._drop_cause)
        counters = {
            key: value
            for key, value in fleet_report.items()
            if not key.endswith("_conn_entries")
        }
    recorder = (
        FlightRecorder.merged(fleet.partition_recorders()) if record else None
    )
    return _PartitionPartial(
        worker_id=worker_id,
        owned=tuple(owned),
        registry=fleet.merged_registry(),
        audit=structural,
        predicted=set(predicted),
        outcomes=connection_outcomes(connections),
        move_causes=move_causes,
        drop_causes=drop_causes,
        counters=counters,
        conn_entries=conn_entries,
        epoch_digests=tuple(digests),
        timeline=samplers[0].timeline if samplers else None,
        recorder=recorder,
    )


def _partition_worker_main(
    worker_id: int,
    owned: Tuple[int, ...],
    num_workers: int,
    run_kwargs: Dict[str, object],
    conn,
) -> None:
    """Spawned partition worker: replay one replica, barrier over the pipe.

    Protocol (duplex pipe): ``("epoch", k, digest)`` up at each barrier,
    blocking until the parent's ``"go"`` comes back; ``("done", partial)``
    after the run; ``("error", traceback)`` on any failure.  Like
    `_worker_main`, the failure path never goes silent: if the error
    cannot be shipped it lands on stderr and the worker dies non-zero.
    """
    try:

        def barrier(k: int, digest: Tuple[int, ...]) -> None:
            conn.send(("epoch", k, digest))
            reply = conn.recv()
            if reply != "go":
                raise RuntimeError(
                    f"partition worker {worker_id}: unexpected barrier "
                    f"reply {reply!r} at epoch {k}"
                )

        partial = _run_partition_replica(
            worker_id, tuple(owned), num_workers, barrier, run_kwargs
        )
        conn.send(("done", partial))
    except BaseException:
        tb = traceback.format_exc()
        try:
            conn.send(("error", tb))
        except Exception:
            sys.stderr.write(
                f"[parallel] partition worker {worker_id} failed and the "
                f"error pipe is dead; traceback follows\n{tb}"
            )
            sys.stderr.flush()
            raise
    finally:
        conn.close()


def _run_partition_pool(
    owned_sets: Sequence[Tuple[int, ...]],
    run_kwargs: Dict[str, object],
    epochs: int,
) -> List[_PartitionPartial]:
    """Drive one spawned replica per partition through lockstep epochs.

    The parent is the barrier: each epoch it collects every replica's
    digest, verifies replica agreement, and releases the round with
    ``"go"``.  A dead worker (EOF on its pipe) or a digest mismatch
    aborts the whole run — a partitioned result must never silently
    omit a partition.
    """
    ctx = mp.get_context("spawn")
    num_workers = len(owned_sets)
    procs: List[object] = []
    pipes: List[object] = []
    try:
        for worker_id, owned in enumerate(owned_sets):
            parent_end, child_end = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_partition_worker_main,
                args=(worker_id, tuple(owned), num_workers, run_kwargs, child_end),
                daemon=True,
            )
            proc.start()
            child_end.close()
            procs.append(proc)
            pipes.append(parent_end)

        def receive(worker_id: int, expect: str, epoch: Optional[int] = None):
            try:
                message = pipes[worker_id].recv()
            except (EOFError, OSError):
                raise RuntimeError(
                    f"partition worker {worker_id} died"
                    + (f" before epoch {epoch}" if epoch is not None else "")
                ) from None
            if message[0] == "error":
                raise RuntimeError(
                    f"partition worker {worker_id} failed:\n{message[1]}"
                )
            if message[0] != expect:
                raise RuntimeError(
                    f"partition worker {worker_id}: expected {expect!r}, "
                    f"got {message[0]!r}"
                )
            return message

        for k in range(1, epochs + 1):
            round_digests = []
            for worker_id in range(num_workers):
                message = receive(worker_id, "epoch", epoch=k)
                if message[1] != k:
                    raise RuntimeError(
                        f"partition worker {worker_id} is at epoch "
                        f"{message[1]}, parent at {k}"
                    )
                round_digests.append(message[2])
            baseline = round_digests[0]
            for worker_id, digest in enumerate(round_digests):
                if digest != baseline:
                    raise RuntimeError(
                        f"partition replicas diverged at epoch {k}: worker "
                        f"{worker_id} digest {digest} != worker 0 digest "
                        f"{baseline}"
                    )
            for pipe in pipes:
                pipe.send("go")
        partials = [
            receive(worker_id, "done")[1] for worker_id in range(num_workers)
        ]
        return partials
    finally:
        for pipe in pipes:
            pipe.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join()


def run_fleet_partitioned(
    partition_workers: int = 1,
    in_process: Optional[bool] = None,
    seed: int = 7,
    fault_seed: Optional[int] = None,
    pattern: str = "mixed",
    num_switches: int = 4,
    scale: float = 0.05,
    horizon_s: float = 20.0,
    warmup_s: float = 2.0,
    updates_per_min: float = 60.0,
    faults_per_min: float = 4.0,
    replication: Optional[int] = None,
    conn_budget: Optional[int] = None,
    config: Optional[object] = None,
    fleet_config: Optional[object] = None,
    plan: Optional[object] = None,
    driver: Optional[DriverOptions] = None,
    obs: Optional[ObsOptions] = None,
    record=UNSET,
    record_capacity=UNSET,
    timeline_period_s=UNSET,
    batched=UNSET,
    batch_size=UNSET,
) -> FleetPartitionedResult:
    """One fleet chaos run, space-partitioned over ``partition_workers``.

    Accepts the same knobs as :func:`repro.faults.fleet.run_fleet`; the
    partition layout comes from :func:`partition_switches` and depends
    only on ``(num_switches, partition_workers)``, so the merged
    registry, timeline, recorder and audit fingerprints are bit-identical
    for every worker count (asserted by tests/experiments/
    test_partition.py).  ``in_process`` (default: ``partition_workers ==
    1``) runs the replicas sequentially in this process — same results,
    no pool — with digests cross-checked post-hoc instead of per epoch.
    ``driver``/``obs`` are the public spelling of the replay/observability
    knobs; the loose ``record=``/``batched=``/... kwargs still work but
    emit a :class:`DeprecationWarning`.
    """
    from ..deploy.fleet import (
        FleetConfig,
        attribute_outcomes,
        partition_epoch_length,
    )

    driver, obs = resolve_options(
        driver,
        obs,
        legacy={
            "record": record,
            "record_capacity": record_capacity,
            "timeline_period_s": timeline_period_s,
            "batched": batched,
            "batch_size": batch_size,
        },
    )
    owned_sets = partition_switches(num_switches, partition_workers)
    resolved_fleet_config = (
        fleet_config
        if fleet_config is not None
        else FleetConfig(replication=replication, conn_budget=conn_budget)
    )
    epoch_s = partition_epoch_length(resolved_fleet_config)
    epochs = _partition_epochs(horizon_s, epoch_s)
    if in_process is None:
        in_process = partition_workers == 1
    run_kwargs: Dict[str, object] = {
        "seed": int(seed),
        "fault_seed": fault_seed,
        "pattern": str(pattern),
        "num_switches": int(num_switches),
        "scale": float(scale),
        "horizon_s": float(horizon_s),
        "warmup_s": float(warmup_s),
        "updates_per_min": float(updates_per_min),
        "faults_per_min": float(faults_per_min),
        "replication": replication,
        "conn_budget": conn_budget,
        "config": config,
        "fleet_config": fleet_config,
        "plan": plan,
        "record": obs.record,
        "record_capacity": int(obs.record_capacity),
        "timeline_period_s": obs.timeline_period_s,
        "batched": bool(driver.batched),
        "batch_size": int(driver.batch_size),
    }
    if in_process:
        partials = [
            _run_partition_replica(
                worker_id, owned, partition_workers, None, run_kwargs
            )
            for worker_id, owned in enumerate(owned_sets)
        ]
    else:
        partials = _run_partition_pool(owned_sets, run_kwargs, epochs)
    partials.sort(key=lambda p: p.worker_id)

    # Replica agreement: every replica must have produced the identical
    # digest stream (spawn mode already verified per epoch; this also
    # covers in-process mode and the final post-horizon digest).
    baseline = partials[0].epoch_digests
    for partial in partials[1:]:
        if partial.epoch_digests != baseline:
            diverged = next(
                (
                    k
                    for (k, a), (_k, b) in zip(baseline, partial.epoch_digests)
                    if a != b
                ),
                len(baseline),
            )
            raise RuntimeError(
                f"partition replicas diverged at epoch {diverged}: worker "
                f"{partial.worker_id} disagrees with worker 0"
            )

    registry = MetricRegistry.merged(
        (p.registry for p in partials), labels={"fleet": "fleet-silkroad"}
    )
    structural = AuditReport()
    predicted: Set[bytes] = set()
    for partial in partials:
        structural.merge(partial.audit)
        predicted |= partial.predicted

    # Per-connection outcome rows: every replica carries every connection
    # (replicated control plane), each contributing the decisions its own
    # data planes made — union DIP sets, OR the flags.
    merged_rows: Dict[bytes, List[object]] = {}
    for partial in partials:
        for key, dips, dropped, broken, start in partial.outcomes:
            row = merged_rows.get(key)
            if row is None:
                merged_rows[key] = [set(dips), dropped, broken, start]
            else:
                row[0] |= set(dips)
                row[1] = row[1] or dropped
                row[2] = row[2] or broken
    measured = kept = broken_count = blackholed = 0
    for key, row in merged_rows.items():
        if row[3] < 0:
            continue
        measured += 1
        if len(row[0]) > 1 and not row[2]:
            broken_count += 1
        elif row[1]:
            blackholed += 1
        else:
            kept += 1
    survival = {
        "measured": measured,
        "kept": kept,
        "broken": broken_count,
        "blackholed": blackholed,
    }
    primary = partials[0]
    audit = attribute_outcomes(
        structural,
        (
            (key, len(row[0]) > 1 and not row[2], bool(row[1]))
            for key, row in merged_rows.items()
        ),
        primary.move_causes or {},
        primary.drop_causes or {},
        predicted,
    )
    counters = dict(primary.counters)
    live_entries = 0.0
    for partial in partials:
        for key, value in partial.conn_entries.items():
            counters[key] = value
            live_entries += value
    counters["fleet_conn_entries"] = live_entries
    timeline = Timeline.merged(
        p.timeline for p in partials if p.timeline is not None
    )
    recorder = FlightRecorder.merged(
        p.recorder for p in partials if p.recorder is not None
    )
    return FleetPartitionedResult(
        pattern=pattern,
        seed=seed,
        fault_seed=fault_seed if fault_seed is not None else seed + 2000,
        num_switches=num_switches,
        workers=partition_workers,
        partitions=owned_sets,
        epochs=epochs,
        epoch_length_s=epoch_s,
        registry=registry,
        audit=audit,
        survival=survival,
        counters=counters,
        timeline=timeline,
        recorder=recorder,
    )
