"""Figure 15: benefit of DIP-pool version reuse.

Drives one VIP's DipPoolTable through rolling-upgrade update streams of
increasing intensity (each removal's DIP is re-added after a sampled
downtime, the dominant §3.1 pattern) and compares:

* **without reuse** — every update allocates a fresh version number, so a
  10-minute window with N updates needs ~N version numbers;
* **with reuse + recycling** — additions substitute into the vacated slot
  of a still-live old version, and version numbers return to the ring
  buffer once the connection cohorts pinned to them expire; what matters
  for the version-field width is the *peak* number of simultaneously live
  versions.

Paper anchors: up to 330 updates in ten minutes would need 330 versions
(9 bits) naively; with reuse at most 51 live versions (6 bits).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis import format_table
from ..core.dip_pool_table import DipPoolTable
from ..netsim.cluster import make_cluster
from ..netsim.updates import DowntimeModel

DEFAULT_UPDATE_COUNTS = (10, 30, 50, 100, 200, 330)
WINDOW_S = 600.0
#: Rolling-reboot downtime inside a 10-minute window (a scaled-down slice
#: of Figure 4's upgrade distribution).
WINDOW_DOWNTIME = DowntimeModel(median_s=60.0, p99_s=240.0)
#: How long a connection cohort pins a version (covers the bulk of the
#: Hadoop-style flow-duration distribution).
DEFAULT_HOLD_S = 90.0


@dataclass(frozen=True)
class Fig15Point:
    updates_applied: int
    versions_no_reuse: int
    peak_live_with_reuse: int

    @staticmethod
    def _bits(versions: int) -> int:
        return max(1, math.ceil(math.log2(max(versions, 2))))

    @property
    def bits_no_reuse(self) -> int:
        return self._bits(self.versions_no_reuse)

    @property
    def bits_with_reuse(self) -> int:
        return self._bits(self.peak_live_with_reuse)


def _rolling_stream(
    rng: np.random.Generator, dips: list, count: int
) -> List[Tuple[float, str, object]]:
    """(time, 'remove'|'add', dip) events of a rolling upgrade."""
    removals = max(count // 2, 1)
    times = np.sort(rng.uniform(0.0, WINDOW_S * 0.8, size=removals))
    downtimes = WINDOW_DOWNTIME.sample(rng, size=removals)
    events: List[Tuple[float, str, object]] = []
    order = rng.permutation(len(dips))
    for i, (t, dt) in enumerate(zip(times, downtimes)):
        dip = dips[order[i % len(dips)]]
        events.append((float(t), "remove", dip))
        events.append((min(float(t) + float(dt), WINDOW_S - 1e-6), "add", dip))
    events.sort(key=lambda e: e[0])
    return events[:count]


def run(
    update_counts: Sequence[int] = DEFAULT_UPDATE_COUNTS,
    dips_per_vip: int = 64,
    seed: int = 15,
    hold_s: float = DEFAULT_HOLD_S,
) -> List[Fig15Point]:
    points: List[Fig15Point] = []
    for count in update_counts:
        rng = np.random.default_rng(seed + count)
        cluster = make_cluster(num_vips=1, dips_per_vip=dips_per_vip)
        vip = cluster.vips[0]
        dips = list(cluster.services[0].dips)
        events = _rolling_stream(rng, dips, count)

        # --- without reuse: a fresh version per update, nothing recycled
        # within the window (long-lived connections pin them all).
        no_reuse = DipPoolTable(version_bits=16, version_reuse=False)
        no_reuse.add_vip(vip, dips)
        removed: set = set()
        applied = 0
        for _t, kind, dip in events:
            if kind == "remove" and dip not in removed and len(
                no_reuse.pool(vip, no_reuse.current_version(vip))
            ) > 1:
                no_reuse.acquire(vip, no_reuse.current_version(vip))
                no_reuse.remove_dip(vip, dip)
                removed.add(dip)
                applied += 1
            elif kind == "add" and dip in removed:
                no_reuse.acquire(vip, no_reuse.current_version(vip))
                no_reuse.add_dip(vip, dip)
                removed.discard(dip)
                applied += 1
        versions_no_reuse = no_reuse.versions_created(vip)

        # --- with reuse: substitution + ring-buffer recycling as cohorts
        # expire; measure the peak number of simultaneously live versions.
        table = DipPoolTable(version_bits=16, version_reuse=True)
        table.add_vip(vip, dips)
        releases: List[Tuple[float, int]] = []  # (release_time, version)
        removed = set()
        peak_live = 1
        for t, kind, dip in events:
            while releases and releases[0][0] <= t:
                _rt, version = heapq.heappop(releases)
                table.release(vip, version)
            current = table.current_version(vip)
            table.acquire(vip, current)  # the cohort arriving before this
            heapq.heappush(releases, (t + hold_s, current))
            if kind == "remove" and dip not in removed and len(table.pool(vip, current)) > 1:
                table.remove_dip(vip, dip)
                removed.add(dip)
            elif kind == "add" and dip in removed:
                table.add_dip(vip, dip)
                removed.discard(dip)
            peak_live = max(peak_live, len(table.live_versions(vip)))
        points.append(
            Fig15Point(
                updates_applied=applied,
                versions_no_reuse=versions_no_reuse,
                peak_live_with_reuse=peak_live,
            )
        )
    return points


def main(seed: int = 15) -> str:
    points = run(seed=seed)
    rows = [
        (
            p.updates_applied,
            p.versions_no_reuse,
            p.bits_no_reuse,
            p.peak_live_with_reuse,
            p.bits_with_reuse,
        )
        for p in points
    ]
    table = format_table(
        (
            "updates in 10 min",
            "versions (no reuse)",
            "bits",
            "peak live versions (reuse)",
            "bits",
        ),
        rows,
        title="Figure 15: version reuse bounds the version-number space",
    )
    anchors = "paper anchors: 330 updates -> 330 versions / 9 bits without reuse, <=51 / 6 bits with reuse"
    return table + "\n" + anchors


if __name__ == "__main__":
    print(main())
