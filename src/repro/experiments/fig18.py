"""Figure 18: TransitTable size vs PCC protection.

Sweeps the TransitTable Bloom filter from 8 bytes to 1 KB under three
learning-filter timeouts (0.5 / 1 / 5 ms) at 10 updates per minute.  A
tiny filter saturates during step 1; connections arriving in step 2 then
falsely match it, adopt the *old* pool version, and lose that protection
when the filter clears at t_finish — the violation mechanism the paper
measures.

Paper anchors: 8 bytes already prevents violations at <=1 ms timeouts;
at 5 ms the 8-byte filter breaks ~20 connections in an hour while 256
bytes breaks none.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis import format_table
from .common import build_workload, silkroad_factory

DEFAULT_SIZES = (8, 64, 256)
DEFAULT_TIMEOUTS = (0.5e-3, 5e-3)
UPDATES_PER_MIN = 30.0


@dataclass
class Fig18Point:
    transit_bytes: int
    timeout_s: float
    violations: int
    transit_fp_adopted: int


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    timeouts: Sequence[float] = DEFAULT_TIMEOUTS,
    scale: float = 1.0,
    seed: int = 18,
    horizon_s: float = 60.0,
    warmup_s: float = 10.0,
    arrival_scale: float = 16.0,
    num_vips: int = 2,
    insertion_rate_per_s: float = 50_000.0,
    batched: bool = True,
    batch_size: int = 256,
) -> List[Fig18Point]:
    """The per-VIP arrival rate is boosted (few VIPs, ``arrival_scale``) so
    the number of connections marked during a step-1 window — arrival rate
    times the learning-filter timeout — matches what the paper's 2.77 M new
    connections per minute would produce; that product is what saturates a
    tiny filter."""
    points: List[Fig18Point] = []
    for timeout in timeouts:
        workload = build_workload(
            updates_per_min=UPDATES_PER_MIN,
            scale=scale,
            seed=seed,
            horizon_s=horizon_s,
            warmup_s=warmup_s,
            arrival_scale=arrival_scale,
            num_vips=num_vips,
        )
        for size in sizes:
            factory = silkroad_factory(
                use_transit_table=True,
                transit_table_bytes=size,
                learning_timeout_s=timeout,
                insertion_rate_per_s=insertion_rate_per_s,
                conn_table_capacity=600_000,
                name=f"silkroad-{size}B",
            )
            report, _conns, lb = workload.replay(
                factory, batched=batched, batch_size=batch_size
            )
            points.append(
                Fig18Point(
                    transit_bytes=size,
                    timeout_s=timeout,
                    violations=report.pcc_violations,
                    transit_fp_adopted=int(lb.transit_fp_adopted),
                )
            )
    return points


def main(scale: float = 1.0, seed: int = 18) -> str:
    points = run(scale=scale, seed=seed)
    rows = [
        (
            p.transit_bytes,
            f"{p.timeout_s * 1e3:.1f}",
            p.violations,
            p.transit_fp_adopted,
        )
        for p in points
    ]
    table = format_table(
        ("TransitTable bytes", "filter timeout (ms)", "broken conns", "bloom FPs adopted"),
        rows,
        title="Figure 18: TransitTable size vs PCC (10 upd/min)",
    )
    anchors = (
        "paper anchors: 8 B suffices at <=1 ms timeout; 8 B @ 5 ms breaks "
        "~20 conns/hour; 256 B breaks none anywhere"
    )
    return table + "\n" + anchors


if __name__ == "__main__":
    print(main())
