"""Fleet failover survival table: kept vs. broken vs. blackholed.

Extends §7's single-failure scenario to a controller-managed fleet under
seeded chaos (:mod:`repro.faults.fleet`): switches crash and reboot,
control planes partition, heartbeats get lost, detection stalls, VIPs get
drained between switches.  For each failure pattern we replay a sweep of
independent fault plans and count, over the measured connections, how many

* **kept** their DIP end to end,
* **broke** PCC (saw two different DIPs — §7's version-pinned re-hash,
  an overflow shed, or a mid-reassignment race),
* were **blackholed** only (dropped packets during the detection window
  but never landed on a second DIP).

Every broken or blackholed connection must be *attributed* by
:func:`repro.deploy.fleet.audit_fleet` to a fleet-level cause; the
``unattributed`` column is required to be zero — that is the acceptance
bar for the fleet failure model, enforced by the tests and the CI smoke.

The cascade pattern runs with a per-switch connection budget so the
graceful-degradation path (shedding the lowest-priority VIPs instead of
overflowing survivors' ConnTables) is exercised, not just implemented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_PATTERNS: Tuple[str, ...] = (
    "crash",
    "partition",
    "flap",
    "cascade",
    "mixed",
)

#: Per-switch connection budget applied to the cascade pattern (only) so
#: overlapping failures push survivors over capacity and force sheds.
CASCADE_CONN_BUDGET = 60


@dataclass(frozen=True)
class SurvivalPoint:
    """Aggregated survival of one failure pattern across its plan sweep."""

    pattern: str
    plans: int
    faults: int
    measured: int
    kept: int
    broken: int
    blackholed: int
    shed: int
    detections: int
    rejoins: int
    unattributed: int
    audit_ok: bool

    @property
    def kept_fraction(self) -> float:
        return self.kept / self.measured if self.measured else 1.0


def run(
    seed: int = 7,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    plans_per_pattern: int = 4,
    num_switches: int = 4,
    scale: float = 0.03,
    horizon_s: float = 12.0,
    warmup_s: float = 1.0,
    updates_per_min: float = 60.0,
    faults_per_min: float = 6.0,
    cascade_conn_budget: Optional[int] = CASCADE_CONN_BUDGET,
) -> List[SurvivalPoint]:
    """The survival sweep: ``plans_per_pattern`` seeded plans per pattern.

    Fault seeds are derived from ``(seed, cell index)`` so the sweep is a
    pure function of its arguments.
    """
    from ..faults.fleet import run_fleet

    points: List[SurvivalPoint] = []
    cell_index = 0
    for pattern in patterns:
        totals: Dict[str, int] = {
            "faults": 0,
            "measured": 0,
            "kept": 0,
            "broken": 0,
            "blackholed": 0,
            "shed": 0,
            "detections": 0,
            "rejoins": 0,
            "unattributed": 0,
        }
        audit_ok = True
        for _ in range(plans_per_pattern):
            result = run_fleet(
                seed=seed,
                fault_seed=seed + 500 + cell_index * 7919,
                pattern=pattern,
                num_switches=num_switches,
                scale=scale,
                horizon_s=horizon_s,
                warmup_s=warmup_s,
                updates_per_min=updates_per_min,
                faults_per_min=faults_per_min,
                conn_budget=(
                    cascade_conn_budget if pattern == "cascade" else None
                ),
            )
            cell_index += 1
            totals["faults"] += len(result.plan)
            for key in ("measured", "kept", "broken", "blackholed"):
                totals[key] += result.survival[key]
            totals["shed"] += int(result.fleet.shed_connections)
            totals["detections"] += int(result.fleet.detections)
            totals["rejoins"] += int(result.fleet.rejoins)
            totals["unattributed"] += (
                result.audit.unattributed_violations
                + result.audit.unattributed_drops
            )
            audit_ok = audit_ok and result.audit.ok
        points.append(
            SurvivalPoint(
                pattern=pattern,
                plans=plans_per_pattern,
                faults=totals["faults"],
                measured=totals["measured"],
                kept=totals["kept"],
                broken=totals["broken"],
                blackholed=totals["blackholed"],
                shed=totals["shed"],
                detections=totals["detections"],
                rejoins=totals["rejoins"],
                unattributed=totals["unattributed"],
                audit_ok=audit_ok,
            )
        )
    return points


def main(seed: int = 7) -> str:
    from ..analysis import format_table

    points = run(seed=seed)
    rows = [
        (
            p.pattern,
            p.plans,
            p.faults,
            p.measured,
            p.kept,
            p.broken,
            p.blackholed,
            p.shed,
            p.detections,
            f"{100 * p.kept_fraction:.1f}",
            p.unattributed,
            "ok" if p.audit_ok else "FAILED",
        )
        for p in points
    ]
    table = format_table(
        (
            "pattern",
            "plans",
            "faults",
            "measured",
            "kept",
            "broken",
            "blackholed",
            "shed",
            "detections",
            "% kept",
            "unattributed",
            "audit",
        ),
        rows,
        title="fleet failover survival under seeded chaos",
    )
    return table + (
        "\nexpectation: every audit passes and the unattributed column is "
        "zero — each broken connection traces to a version-pinned re-hash, "
        "an overflow shed, or a reassignment race, and each blackholed one "
        "to the detection window"
    )


if __name__ == "__main__":
    print(main())
