"""§6.1 economics: power and cost of SLBs vs one switching ASIC.

The paper's arithmetic: matching a 6.4 Tbps ASIC's ~10 Gpps with 12 Mpps
SLB machines takes ~833 machines, so the ASIC uses about 1/500 the power
and 1/250 the capital cost.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_table
from ..baselines import (
    ASIC_COST_USD,
    ASIC_WATTS,
    CostComparison,
    cost_of_equal_throughput,
)


def run() -> CostComparison:
    return cost_of_equal_throughput()


def summary(comparison: CostComparison) -> Dict[str, float]:
    return {
        "slb_machines": comparison.slb_count,
        "power_ratio": comparison.power_ratio,
        "cost_ratio": comparison.cost_ratio,
    }


def main() -> str:
    comparison = run()
    rows = [
        ("SLB machines to match one ASIC", f"{comparison.slb_count:.0f}"),
        ("SLB power (kW)", f"{comparison.slb_watts / 1e3:.0f}"),
        ("ASIC power (W)", f"{ASIC_WATTS:.0f}"),
        ("power ratio (paper ~500x)", f"{comparison.power_ratio:.0f}x"),
        ("SLB capital cost (M USD)", f"{comparison.slb_cost_usd / 1e6:.2f}"),
        ("ASIC capital cost (USD)", f"{ASIC_COST_USD:.0f}"),
        ("cost ratio (paper ~250x)", f"{comparison.cost_ratio:.0f}x"),
    ]
    return format_table(("metric", "value"), rows, title="§6.1 economics")


if __name__ == "__main__":
    print(main())
