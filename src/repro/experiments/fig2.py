"""Figure 2: frequency of DIP-pool updates across clusters.

For each cluster of a synthesized month-long fleet trace we take the median
and 99th-percentile minute's update count, then report the complementary
CDF across clusters ("Y % of clusters have more than X updates per minute").

Paper anchors: 32 % of clusters exceed 10 updates/min in their p99 minute,
3 % exceed 50; half the Backends exceed 16; some PoPs/Frontends exceed 100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis import Cdf, format_table, percent_above
from ..netsim.cluster import ClusterType
from ..traces import FleetSynthesizer


@dataclass
class Fig2Result:
    per_cluster_median: Dict[ClusterType, List[float]]
    per_cluster_p99: Dict[ClusterType, List[float]]

    def all_p99(self) -> List[float]:
        return [x for values in self.per_cluster_p99.values() for x in values]

    def all_median(self) -> List[float]:
        return [x for values in self.per_cluster_median.values() for x in values]

    def pct_clusters_p99_above(self, threshold: float) -> float:
        return percent_above(self.all_p99(), threshold)


def run(seed: int = 2, minutes: int = 4_320) -> Fig2Result:
    """Synthesize a fleet month (default: 3 days of minutes per cluster to
    keep runtime low; the statistics converge well before a full month)."""
    synth = FleetSynthesizer(seed=seed)
    profiles = synth.synthesize()
    medians: Dict[ClusterType, List[float]] = {k: [] for k in ClusterType}
    p99s: Dict[ClusterType, List[float]] = {k: [] for k in ClusterType}
    for profile in profiles:
        counts = synth.monthly_minutes(profile, minutes=minutes)
        medians[profile.kind].append(float(np.median(counts)))
        p99s[profile.kind].append(float(np.percentile(counts, 99)))
    return Fig2Result(per_cluster_median=medians, per_cluster_p99=p99s)


def main(seed: int = 2) -> str:
    result = run(seed=seed)
    rows: List[Tuple[str, float, float, float]] = []
    for kind in ClusterType:
        p99 = result.per_cluster_p99[kind]
        if not p99:
            continue
        cdf = Cdf.of(p99)
        rows.append(
            (
                kind.value,
                cdf.median,
                100.0 * cdf.fraction_above(10),
                100.0 * cdf.fraction_above(50),
            )
        )
    rows.append(
        (
            "all",
            Cdf.of(result.all_p99()).median,
            result.pct_clusters_p99_above(10),
            result.pct_clusters_p99_above(50),
        )
    )
    table = format_table(
        ("cluster type", "median p99-minute upd/min", "% clusters >10", "% clusters >50"),
        rows,
        title="Figure 2: DIP pool update frequency (99th percentile minute)",
    )
    paper = "paper anchors: all clusters -> 32% above 10, 3% above 50"
    return table + "\n" + paper


if __name__ == "__main__":
    print(main())
