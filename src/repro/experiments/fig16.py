"""Figure 16: PCC violations vs DIP-pool update frequency.

Replays the PoP-style workload at update rates from 1 to 50 per minute
against three systems:

* **Duet** (Migrate-10min, the paper's Duet setting),
* **SilkRoad without TransitTable** (updates execute immediately; pending
  connections re-hash during their few-millisecond insertion window),
* **SilkRoad** (3-step update with a 256-byte TransitTable).

Paper anchors (at 10 updates/min): Duet breaks 0.08 % of connections;
SilkRoad-without-TransitTable 0.00005 % (three orders of magnitude less);
SilkRoad breaks none at any rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..analysis import format_table
from ..baselines import DuetLoadBalancer, MigrationPolicy
from .common import build_workload, silkroad_factory

DEFAULT_RATES = (1.0, 10.0, 25.0, 50.0)


def default_systems(
    insertion_rate_per_s: float = 200_000.0,
    learning_timeout_s: float = 1e-3,
    duet_period_s: float = 120.0,
) -> Dict[str, Callable[[], object]]:
    """Duet's 10-minute migration period is compressed (default 2 min) so
    several migrate-back events fall inside the laptop-scale horizon; the
    violations-per-migration mechanism is unchanged."""
    return {
        "duet": lambda: DuetLoadBalancer(
            name="duet", policy=MigrationPolicy.PERIODIC, migrate_period_s=duet_period_s
        ),
        "silkroad-no-transittable": silkroad_factory(
            use_transit_table=False,
            insertion_rate_per_s=insertion_rate_per_s,
            learning_timeout_s=learning_timeout_s,
        ),
        "silkroad": silkroad_factory(
            use_transit_table=True,
            insertion_rate_per_s=insertion_rate_per_s,
            learning_timeout_s=learning_timeout_s,
        ),
    }


@dataclass
class Fig16Point:
    system: str
    updates_per_min: float
    violations: int
    measured_connections: int

    @property
    def violation_fraction(self) -> float:
        if self.measured_connections == 0:
            return 0.0
        return self.violations / self.measured_connections


def run(
    rates: Sequence[float] = DEFAULT_RATES,
    scale: float = 1.0,
    seed: int = 16,
    horizon_s: float = 420.0,
    systems: Dict[str, Callable[[], object]] = None,
    batched: bool = True,
    batch_size: int = 256,
) -> List[Fig16Point]:
    """``batched`` selects the chunked-arrival driver (default); the
    scalar oracle produces bit-identical points (the differential tests
    pin this), just slower."""
    if systems is None:
        # Insertion slowed proportionally to the scaled-down arrival rate so
        # the pending-connection window is as consequential as at full scale.
        systems = default_systems(insertion_rate_per_s=20_000.0)
    points: List[Fig16Point] = []
    for rate in rates:
        workload = build_workload(
            updates_per_min=rate, scale=scale, seed=seed, horizon_s=horizon_s
        )
        for name, factory in systems.items():
            report, _conns, _lb = workload.replay(
                factory, batched=batched, batch_size=batch_size
            )
            points.append(
                Fig16Point(
                    system=name,
                    updates_per_min=rate,
                    violations=report.pcc_violations,
                    measured_connections=report.measured_connections,
                )
            )
    return points


def main(scale: float = 1.0, seed: int = 16) -> str:
    points = run(scale=scale, seed=seed)
    rows = [
        (
            p.system,
            p.updates_per_min,
            p.violations,
            f"{100 * p.violation_fraction:.5f}",
        )
        for p in points
    ]
    table = format_table(
        ("system", "updates/min", "broken conns", "% of connections"),
        rows,
        title="Figure 16: PCC violations vs update frequency",
    )
    anchors = (
        "paper anchors @10/min: Duet 0.08%; SilkRoad-no-TT ~0.00005% "
        "(about 3 orders less); SilkRoad 0 at every rate"
    )
    return table + "\n" + anchors


if __name__ == "__main__":
    print(main())
