"""Table 1: SRAM size and switching capacity trend across ASIC generations.

Static published data (the paper's Table 1); the experiment exposes it and
the derived claim — SRAM grew ~5x over four years — that makes storing
millions of connection states on-chip feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import format_table


@dataclass(frozen=True)
class AsicGeneration:
    capacity_tbps: str
    year: int
    sram_mb_low: int
    sram_mb_high: int


TABLE1: List[AsicGeneration] = [
    AsicGeneration(capacity_tbps="<1.6", year=2012, sram_mb_low=10, sram_mb_high=20),
    AsicGeneration(capacity_tbps="3.2", year=2014, sram_mb_low=30, sram_mb_high=60),
    AsicGeneration(capacity_tbps="6.4+", year=2016, sram_mb_low=50, sram_mb_high=100),
]


def sram_growth_factor() -> float:
    """SRAM growth from the 2012 to the 2016 generation (paper: ~5x)."""
    first, last = TABLE1[0], TABLE1[-1]
    return last.sram_mb_high / first.sram_mb_high


def run() -> List[AsicGeneration]:
    return list(TABLE1)


def main() -> str:
    rows = [
        (g.capacity_tbps, g.year, f"{g.sram_mb_low}-{g.sram_mb_high}") for g in TABLE1
    ]
    out = format_table(
        ("ASIC generation (Tbps)", "year", "SRAM (MB)"),
        rows,
        title="Table 1: SRAM and switching capacity trend",
    )
    return out + f"\nSRAM growth 2012->2016: {sram_growth_factor():.0f}x"


if __name__ == "__main__":
    print(main())
