"""Run every paper experiment and print its table/series.

``python -m repro.experiments.runner`` regenerates the whole evaluation at
laptop scale (see EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from . import (
    digest_fp,
    economics,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig8,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fleet_failover,
    hybrid,
    insertion_cost,
    latency,
    meter_accuracy,
    multi_digest,
    switch_failure,
    table1,
    table2,
)

EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": table1.main,
    "fig2": fig2.main,
    "fig3": fig3.main,
    "fig4": fig4.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig8": fig8.main,
    "table2": table2.main,
    "fig12": fig12.main,
    "fig13": fig13.main,
    "fig14": fig14.main,
    "fig15": fig15.main,
    "fig16": fig16.main,
    "fig17": fig17.main,
    "fig18": fig18.main,
    "fleet_failover": fleet_failover.main,
    "latency": latency.main,
    "hybrid": hybrid.main,
    "switch_failure": switch_failure.main,
    "multi_digest": multi_digest.main,
    "insertion_cost": insertion_cost.main,
    "digest_fp": digest_fp.main,
    "meter_accuracy": meter_accuracy.main,
    "economics": economics.main,
}


def run_all(names=None, stream=None, telemetry=None) -> str:
    """Run the chosen experiments; optionally stream each section to
    ``stream`` as it completes (the CLI does, so long runs show progress).

    When ``telemetry`` is a path, the runner records its own metrics — one
    span and one duration gauge per experiment, plus a wall-time histogram —
    and writes them there as JSONL when the run finishes.
    """
    registry = tracer = duration_hist = None
    if telemetry is not None:
        from ..obs import MetricRegistry, Tracer, iter_jsonl, write_jsonl

        registry = MetricRegistry(labels={"component": "runner"})
        tracer = Tracer()
        duration_hist = registry.histogram(
            "runner.experiment_duration_s",
            buckets=(0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0),
            quantiles=(0.5, 0.99),
            help="wall time per experiment",
        )
    chosen = list(EXPERIMENTS if names is None else names)
    sections = []
    for name in chosen:
        start = time.time()
        span = (
            tracer.start_span("experiment", t=start, experiment=name)
            if tracer is not None
            else None
        )
        body = EXPERIMENTS[name]()
        elapsed = time.time() - start
        if registry is not None:
            duration_hist.observe(elapsed)
            registry.gauge(
                f"runner.{name}.duration_s", "wall time of this experiment"
            ).set(elapsed)
            span.finish(start + elapsed)
        section = f"==== {name} ({elapsed:.1f}s) ====\n{body}"
        sections.append(section)
        if stream is not None:
            print(section, end="\n\n", file=stream, flush=True)
    if telemetry is not None:
        with open(telemetry, "w") as fh:
            write_jsonl(fh, iter_jsonl(registry, tracer))
    return "\n\n".join(sections)


#: Default base seeds of the shardable experiments (match the figures').
PARALLEL_TASKS: Dict[str, int] = {"fig16": 16, "fig18": 18, "chaos": 7, "fleet": 7}


def run_parallel(
    task: str,
    workers=None,
    num_shards: int = 4,
    seed=None,
    params=None,
    stream=None,
) -> str:
    """Run one shardable experiment via the sharded replay engine.

    Returns the printable fleet summary (and streams it, like
    :func:`run_all`); raises ``KeyError`` for tasks the engine does not
    shard — ``PARALLEL_TASKS`` lists the supported ones with their default
    seeds.
    """
    from .parallel import run_sharded

    if task not in PARALLEL_TASKS:
        raise KeyError(
            f"task {task!r} is not shardable (have {sorted(PARALLEL_TASKS)})"
        )
    if seed is None:
        seed = PARALLEL_TASKS[task]
    start = time.time()
    result = run_sharded(
        task, num_shards=num_shards, workers=workers, seed=seed, params=params
    )
    elapsed = time.time() - start
    lines = [f"==== {task} sharded ({elapsed:.1f}s) ====", result.summary()]
    if result.timeline is not None:
        lines.append(
            f"  timeline: {len(result.timeline)} epochs x "
            f"{len(result.timeline.columns)} columns, "
            f"fingerprint {result.timeline_fingerprint[:16]}"
        )
    if result.recorder is not None:
        lines.append(
            f"  recorder: {len(result.recorder)} events retained, "
            f"{result.recorder.total_dropped} dropped"
        )
    for key in sorted(result.counters):
        lines.append(f"  {key}: {result.counters[key]:g}")
    for failure in result.failed:
        first = failure.reason.strip().splitlines()[-1] if failure.reason else ""
        lines.append(f"  shard {failure.shard_id} FAILED: {first}")
    if not result.audit.ok:
        lines.append(f"  {result.audit}")
    body = "\n".join(lines)
    if stream is not None:
        print(body, file=stream, flush=True)
    return body


def main() -> None:
    import sys

    names = sys.argv[1:] or None
    run_all(names, stream=sys.stdout)


if __name__ == "__main__":
    main()
