"""Figure 3: root causes of DIP additions and removals.

Synthesizes a month of service-management logs across the Backend clusters
of the fleet and recovers the per-cause shares.

Paper anchor: 82.7 % of changes are VIP service upgrades; every other
cause is individually small (testing, failure, preemption, provisioning,
removal).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..analysis import format_table
from ..netsim.cluster import ClusterType
from ..netsim.updates import ROOT_CAUSE_SHARES, RootCause
from ..traces import FleetSynthesizer, cause_shares, synthesize_log


def run(seed: int = 3, changes_per_cluster: int = 5_000) -> Dict[RootCause, float]:
    """Aggregate root-cause shares over the synthesized fleet's Backends."""
    synth = FleetSynthesizer(seed=seed)
    profiles = [p for p in synth.synthesize() if p.kind is ClusterType.BACKEND]
    rng = np.random.default_rng(seed)
    counts: Dict[RootCause, float] = {cause: 0.0 for cause in RootCause}
    total = 0
    for profile in profiles:
        log = synthesize_log(rng, changes_per_cluster, kind=profile.kind)
        for cause, share in cause_shares(log).items():
            counts[cause] += share * len(log)
        total += len(log)
    if total == 0:
        return {}
    return {cause: count / total for cause, count in counts.items() if count > 0}


def main(seed: int = 3) -> str:
    measured = run(seed=seed)
    rows = [
        (
            cause.value,
            100.0 * ROOT_CAUSE_SHARES[cause],
            100.0 * measured.get(cause, 0.0),
        )
        for cause in RootCause
    ]
    return format_table(
        ("root cause", "paper %", "measured %"),
        rows,
        title="Figure 3: root causes of DIP additions/removals",
    )


if __name__ == "__main__":
    print(main())
