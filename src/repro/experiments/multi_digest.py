"""§7: per-stage digest widths — FP/memory tradeoffs beyond one knob.

The paper suggests using *different digest sizes in different stages*:
"when there is a small number of connections, we insert new connections
to stages with larger digest sizes (i.e., low false positives); when the
number of connections increases, we use stages with smaller digest sizes
to scale up."

This experiment measures exactly that: a graded table ([24, 16, 12, 8]
bits across stages) against a uniform 15-bit table of the same total SRAM,
probed for false positives at a **light** fill (entries occupy the wide
early stages only) and at a **heavy** fill (the narrow stages are in
play).  The measured tradeoff: the graded design is an order of magnitude
better while lightly loaded, and pays with a higher FP rate only once the
narrow overflow stages actually fill — which is precisely the "scale up
by tolerating more false positives" elasticity §7 describes (the extra
FPs remain software-resolvable SYN redirects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from ..asicsim.cuckoo import CuckooTable, TableFull
from ..netsim.packet import TupleFactory, VirtualIP

DigestSpec = Union[int, Sequence[int]]

GRADED: Tuple[int, ...] = (24, 16, 12, 8)
UNIFORM_BITS = 15  # same total digest budget as the graded profile


@dataclass(frozen=True)
class MultiDigestPoint:
    design: str
    fill: str
    resident: int
    probes: int
    false_positives: int
    sram_bytes: int
    stage_occupancy: Tuple[int, ...]

    @property
    def fp_rate(self) -> float:
        if self.probes == 0:
            return 0.0
        return self.false_positives / self.probes


def _measure(
    design: str,
    digest_bits: DigestSpec,
    fill_fraction: float,
    fill_label: str,
    capacity: int,
    probes: int,
    seed: int,
) -> MultiDigestPoint:
    table = CuckooTable.for_capacity(
        capacity, target_load=0.9, digest_bits=digest_bits, seed=seed
    )
    factory = TupleFactory()
    vip = VirtualIP.parse("20.0.0.1:80")
    target = int(capacity * fill_fraction)
    inserted = 0
    for _ in range(target):
        try:
            table.insert(factory.next_for(vip).key_bytes(), 1)
            inserted += 1
        except TableFull:
            continue
    table.total_lookups = 0
    table.false_positive_lookups = 0
    for _ in range(probes):
        table.lookup(factory.next_for(vip).key_bytes())
    return MultiDigestPoint(
        design=design,
        fill=fill_label,
        resident=inserted,
        probes=probes,
        false_positives=table.false_positive_lookups,
        sram_bytes=table.sram_bytes,
        stage_occupancy=tuple(table.stage_occupancy()),
    )


def run(
    capacity: int = 24_000,
    probes: int = 80_000,
    seed: int = 0x51A9E,
) -> List[MultiDigestPoint]:
    points: List[MultiDigestPoint] = []
    for design, bits in (("graded-24/16/12/8", GRADED), (f"uniform-{UNIFORM_BITS}", UNIFORM_BITS)):
        for fill_fraction, label in ((0.25, "light"), (0.85, "heavy")):
            points.append(
                _measure(design, bits, fill_fraction, label, capacity, probes, seed)
            )
    return points


def light_fill_advantage(points: List[MultiDigestPoint]) -> float:
    """uniform FP rate / graded FP rate at light fill (>1 = graded wins)."""
    graded = next(p for p in points if p.design.startswith("graded") and p.fill == "light")
    uniform = next(p for p in points if p.design.startswith("uniform") and p.fill == "light")
    if graded.fp_rate == 0:
        return float("inf") if uniform.fp_rate > 0 else 1.0
    return uniform.fp_rate / graded.fp_rate


def main(seed: int = 0x51A9E) -> str:
    from ..analysis import format_table

    points = run(seed=seed)
    rows = [
        (
            p.design,
            p.fill,
            p.resident,
            f"{100 * p.fp_rate:.4f}",
            f"{p.sram_bytes / 1e6:.3f}",
            "/".join(str(o) for o in p.stage_occupancy),
        )
        for p in points
    ]
    table = format_table(
        ("design", "fill", "resident", "FP rate %", "SRAM MB", "per-stage occupancy"),
        rows,
        title="§7 per-stage digest widths: FP vs memory",
    )
    return table + (
        f"\nlight-fill FP advantage of the graded design: "
        f"{light_fill_advantage(points):.1f}x (entries occupy the wide "
        "early stages first)"
    )


if __name__ == "__main__":
    print(main())
