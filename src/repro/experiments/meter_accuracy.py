"""§5.2: per-VIP meter (rate limiter) marking accuracy.

Generates constant-rate traffic into RFC 4115 two-rate three-color meters
at various committed/excess thresholds and burst sizes and measures how
closely the marked-GREEN (and GREEN+YELLOW) throughput tracks the
configured rates.

Paper anchor: generating 10 Gb/s at a VIP across threshold/burst settings,
the observed marking error averages below 1 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..analysis import format_table
from ..asicsim.meters import Color, MeterConfig, TrTcmMeter

LINE_RATE_BPS = 10e9
PACKET_BYTES = 1500
DURATION_S = 2.0


@dataclass
class MeterPoint:
    cir_gbps: float
    eir_gbps: float
    burst_kb: int
    green_error_pct: float
    yellow_error_pct: float

    @property
    def avg_error_pct(self) -> float:
        return (self.green_error_pct + self.yellow_error_pct) / 2.0


def _drive(meter: TrTcmMeter, rate_bps: float, duration_s: float) -> None:
    interval = PACKET_BYTES * 8 / rate_bps
    t = 0.0
    while t < duration_s:
        meter.mark(PACKET_BYTES, t)
        t += interval


def run(
    settings: Sequence[Tuple[float, float, int]] = (
        (2.0, 3.0, 64),
        (4.0, 4.0, 128),
        (6.0, 2.0, 256),
        (8.0, 1.0, 512),
    ),
) -> List[MeterPoint]:
    """Each setting: (CIR Gbps, EIR Gbps, burst KB)."""
    points: List[MeterPoint] = []
    for cir_gbps, eir_gbps, burst_kb in settings:
        meter = TrTcmMeter(
            MeterConfig(
                cir_bps=cir_gbps * 1e9,
                eir_bps=eir_gbps * 1e9,
                cbs_bytes=burst_kb * 1024,
                ebs_bytes=burst_kb * 1024,
            )
        )
        _drive(meter, LINE_RATE_BPS, DURATION_S)
        green_bps = meter.marked_bytes[Color.GREEN] * 8 / DURATION_S
        yellow_bps = meter.marked_bytes[Color.YELLOW] * 8 / DURATION_S
        green_err = abs(green_bps - cir_gbps * 1e9) / (cir_gbps * 1e9) * 100.0
        yellow_err = abs(yellow_bps - eir_gbps * 1e9) / (eir_gbps * 1e9) * 100.0
        points.append(
            MeterPoint(
                cir_gbps=cir_gbps,
                eir_gbps=eir_gbps,
                burst_kb=burst_kb,
                green_error_pct=green_err,
                yellow_error_pct=yellow_err,
            )
        )
    return points


def average_error(points: List[MeterPoint]) -> float:
    if not points:
        return 0.0
    return sum(p.avg_error_pct for p in points) / len(points)


def main() -> str:
    points = run()
    rows = [
        (
            p.cir_gbps,
            p.eir_gbps,
            p.burst_kb,
            f"{p.green_error_pct:.3f}",
            f"{p.yellow_error_pct:.3f}",
        )
        for p in points
    ]
    table = format_table(
        ("CIR Gbps", "EIR Gbps", "burst KB", "green err %", "yellow err %"),
        rows,
        title="Meter marking accuracy at 10 Gb/s offered load (§5.2)",
    )
    return table + f"\naverage error: {average_error(points):.3f}% (paper: <1%)"


if __name__ == "__main__":
    print(main())
