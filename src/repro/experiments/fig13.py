"""Figure 13: how many SLBs one SilkRoad replaces, across clusters.

For every cluster: SLB machines needed for its peak traffic (12 Mpps or
10 Gb/s per machine, whichever binds) versus SilkRoad switches needed for
its peak connection state (10 M connections per switch).

Paper anchors: PoPs need 2-3x more SLBs than SilkRoads; the median
Frontend replaces 11 SLBs per SilkRoad; Backends replace 3 in the median
cluster and 277 in the peak (volume-centric persistent connections).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import Cdf, format_table
from ..baselines import silkroads_required, slbs_required
from ..netsim.cluster import ClusterType
from ..traces import ClusterProfile, FleetSynthesizer


def replacement_ratio(profile: ClusterProfile) -> float:
    """#SLBs / #SilkRoads for one cluster.

    SilkRoads are sized by the connection state one deployed switch holds
    (the per-ToR p99 snapshot of Figure 6, 10 M connections per switch);
    SLBs by the cluster's peak packet and bit rates.
    """
    slbs = slbs_required(profile.peak_pps, profile.traffic_gbps)
    silkroads = silkroads_required(profile.active_conns_per_tor_p99)
    return slbs / silkroads


@dataclass
class Fig13Result:
    ratios: Dict[ClusterType, List[float]]

    def cdf(self, kind: ClusterType) -> Cdf:
        return Cdf.of(self.ratios[kind])


def run(seed: int = 13) -> Fig13Result:
    profiles = FleetSynthesizer(seed=seed).synthesize()
    ratios: Dict[ClusterType, List[float]] = {k: [] for k in ClusterType}
    for profile in profiles:
        ratios[profile.kind].append(replacement_ratio(profile))
    return Fig13Result(ratios=ratios)


def main(seed: int = 13) -> str:
    result = run(seed=seed)
    rows = []
    for kind in ClusterType:
        cdf = result.cdf(kind)
        rows.append(
            (kind.value, f"{cdf.median:.1f}", f"{cdf.quantile(1.0):.0f}")
        )
    table = format_table(
        ("cluster type", "median #SLB per SilkRoad", "peak"),
        rows,
        title="Figure 13: SLBs replaced by one SilkRoad, across clusters",
    )
    anchors = (
        "paper anchors: PoPs 2-3; Frontends 11 median; Backends 3 median, "
        "277 peak"
    )
    return table + "\n" + anchors


if __name__ == "__main__":
    print(main())
