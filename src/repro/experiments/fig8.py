"""Figure 8: number of new connections per VIP in one minute.

CDF over all VIPs of the fleet of the per-minute new-connection arrival
count.

Paper anchors: the distribution spans roughly 1 K to beyond 50 M new
connections per minute per VIP; the PoP trace of §3.2 averages 18.7 K.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis import Cdf, format_table
from ..traces import FleetSynthesizer


def run(seed: int = 8) -> Cdf:
    synth = FleetSynthesizer(seed=seed)
    rates: List[float] = []
    for profile in synth.synthesize():
        rates.extend(float(r) for r in np.atleast_1d(synth.vip_rates(profile)))
    return Cdf.of(rates)


def main(seed: int = 8) -> str:
    cdf = run(seed=seed)
    rows = [
        ("p10", cdf.quantile(0.10)),
        ("median", cdf.median),
        ("p90", cdf.quantile(0.90)),
        ("p99", cdf.p99),
        ("max", cdf.quantile(1.0)),
    ]
    table = format_table(
        ("quantile", "new connections / VIP / minute"),
        rows,
        title="Figure 8: new connections per VIP per minute (all VIPs)",
    )
    return table + "\npaper anchors: spans ~1K to >50M; PoP average 18.7K"


if __name__ == "__main__":
    print(main())
