"""§6.1: digest width vs ConnTable false positives and memory.

Fills a ConnTable to a realistic load and streams new (unseen) connections
through data-plane lookups, counting false hits for several digest widths;
the empirical rate extrapolates to the paper's 2.77 M new connections per
minute.

Paper anchors (one PoP, 2.77 M new conns/min): a 16-bit digest costs 32 MB
SRAM and ~270 false positives per minute (0.01 %); a 24-bit digest costs
42.8 MB and ~1.1 per minute (0.00004 %).  All are resolved in software
with no PCC impact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis import format_table
from ..asicsim.cuckoo import CuckooTable, TableFull
from ..netsim.packet import TupleFactory, VirtualIP

PAPER_NEW_CONNS_PER_MIN = 2_770_000.0


@dataclass
class DigestFpPoint:
    digest_bits: int
    resident_entries: int
    probes: int
    false_positives: int
    sram_bytes: int

    @property
    def fp_rate(self) -> float:
        if self.probes == 0:
            return 0.0
        return self.false_positives / self.probes

    @property
    def fp_per_paper_minute(self) -> float:
        """Extrapolated to the paper's 2.77 M new connections/minute."""
        return self.fp_rate * PAPER_NEW_CONNS_PER_MIN


def run(
    digest_bits: Sequence[int] = (12, 16, 24),
    resident: int = 40_000,
    probes: int = 120_000,
    seed: int = 0xD16,
) -> List[DigestFpPoint]:
    points: List[DigestFpPoint] = []
    for bits in digest_bits:
        table = CuckooTable.for_capacity(
            resident, target_load=0.85, digest_bits=bits, seed=seed
        )
        factory = TupleFactory()
        vip = VirtualIP.parse("20.0.0.1:80")
        inserted = 0
        for _ in range(resident):
            key = factory.next_for(vip).key_bytes()
            try:
                table.insert(key, 1)
                inserted += 1
            except TableFull:
                continue  # rare even at high load; skip and keep filling
        table.total_lookups = 0
        table.false_positive_lookups = 0
        for _ in range(probes):
            key = factory.next_for(vip).key_bytes()  # unseen connections
            table.lookup(key)
        points.append(
            DigestFpPoint(
                digest_bits=bits,
                resident_entries=inserted,
                probes=probes,
                false_positives=table.false_positive_lookups,
                sram_bytes=table.sram_bytes,
            )
        )
    return points


def main(seed: int = 0xD16) -> str:
    points = run(seed=seed)
    rows = [
        (
            p.digest_bits,
            p.resident_entries,
            f"{100 * p.fp_rate:.5f}",
            f"{p.fp_per_paper_minute:.1f}",
            f"{p.sram_bytes / 1e6:.2f}",
        )
        for p in points
    ]
    table = format_table(
        (
            "digest bits",
            "resident conns",
            "FP rate %",
            "FPs/min @2.77M new conns",
            "table SRAM MB",
        ),
        rows,
        title="Digest width vs false positives (§6.1)",
    )
    anchors = (
        "paper anchors: 16-bit -> ~270 FP/min (0.01%), 32 MB; "
        "24-bit -> ~1.1 FP/min (0.00004%), 42.8 MB"
    )
    return table + "\n" + anchors


if __name__ == "__main__":
    print(main())
