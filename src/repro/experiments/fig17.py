"""Figure 17: PCC violations vs new-connection arrival rate.

Fixes the update rate at 10 per minute and scales the arrival rate from
0.1x to 2x of the trace, reporting violated connections per minute.

Paper anchors: SilkRoad (256 B TransitTable) has none at any intensity;
SilkRoad-without-TransitTable and Duet both grow with the arrival rate
(more pending connections, more old connections at migrate-back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..analysis import format_table
from .common import build_workload
from .fig16 import default_systems

DEFAULT_SCALES = (0.1, 0.5, 1.0, 2.0)
UPDATES_PER_MIN = 10.0


@dataclass
class Fig17Point:
    system: str
    arrival_scale: float
    violations_per_minute: float
    violations: int


def run(
    arrival_scales: Sequence[float] = DEFAULT_SCALES,
    scale: float = 1.0,
    seed: int = 17,
    horizon_s: float = 420.0,
    systems: Dict[str, Callable[[], object]] = None,
) -> List[Fig17Point]:
    if systems is None:
        systems = default_systems(insertion_rate_per_s=20_000.0)
    points: List[Fig17Point] = []
    for arrival_scale in arrival_scales:
        workload = build_workload(
            updates_per_min=UPDATES_PER_MIN,
            scale=scale,
            seed=seed,
            horizon_s=horizon_s,
            arrival_scale=arrival_scale,
        )
        for name, factory in systems.items():
            report, _conns, _lb = workload.replay(factory)
            points.append(
                Fig17Point(
                    system=name,
                    arrival_scale=arrival_scale,
                    violations_per_minute=report.violations_per_minute,
                    violations=report.pcc_violations,
                )
            )
    return points


def main(scale: float = 1.0, seed: int = 17) -> str:
    points = run(scale=scale, seed=seed)
    rows = [
        (p.system, p.arrival_scale, p.violations, f"{p.violations_per_minute:.2f}")
        for p in points
    ]
    table = format_table(
        ("system", "arrival-rate scale", "broken conns", "broken/min"),
        rows,
        title="Figure 17: PCC violations vs new-connection arrival rate (10 upd/min)",
    )
    anchors = (
        "paper anchors: SilkRoad 0 at all intensities; the other two grow "
        "with arrival rate"
    )
    return table + "\n" + anchors


if __name__ == "__main__":
    print(main())
