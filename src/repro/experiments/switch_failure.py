"""§7: switch-failure behaviour of a network-wide SilkRoad deployment.

Runs a layer of SilkRoad switches behind resilient fabric ECMP, kills one
mid-run, and measures which of its connections break: only flows pinned to
an *older* pool version (their ConnTable state died with the switch and
the survivors re-hash them under the current pool) — the same exposure as
losing an SLB.  The scenario runs twice, with and without a DIP-pool
update shortly before the failure, to show the old-version exposure appear.

A second scenario attacks the *slow path* of a single switch instead:
seeded chaos runs (CPU crashes/stalls, failing table writes, lost
notifications — see :mod:`repro.faults`) against the hardened
configuration, verifying that every invariant audit passes and PCC
violations stay attributable to the injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import SilkRoadConfig
from ..deploy.failover import FabricSilkRoad
from .common import build_workload


@dataclass(frozen=True)
class FailurePoint:
    update_before_failure: bool
    failed_over: int
    violations: int
    measured_connections: int

    @property
    def broken_fraction_of_moved(self) -> float:
        if self.failed_over == 0:
            return 0.0
        return self.violations / self.failed_over


def run(
    num_switches: int = 4,
    scale: float = 0.3,
    seed: int = 7,
    horizon_s: float = 120.0,
    failure_at: float = 80.0,
) -> List[FailurePoint]:
    points: List[FailurePoint] = []
    for update_before in (False, True):
        workload = build_workload(
            updates_per_min=0.0,  # updates injected manually below
            scale=scale,
            seed=seed,
            horizon_s=horizon_s,
        )
        updates = []
        if update_before:
            from ..netsim.updates import UpdateEvent, UpdateKind

            # Remove one DIP of every VIP shortly before the failure, so
            # long-lived connections sit on the old pool version.
            for service in workload.cluster.services:
                updates.append(
                    UpdateEvent(
                        failure_at - 30.0,
                        service.vip,
                        UpdateKind.REMOVE,
                        service.dips[-1],
                    )
                )
        workload.updates = updates

        fabric_holder: List[Optional[FabricSilkRoad]] = [None]

        def factory():
            fabric = FabricSilkRoad(
                num_switches=num_switches,
                config=SilkRoadConfig(conn_table_capacity=100_000),
            )
            fabric.schedule_failure(1, at=failure_at)
            fabric_holder[0] = fabric
            return fabric

        report, _conns, fabric = workload.replay(factory)
        points.append(
            FailurePoint(
                update_before_failure=update_before,
                failed_over=int(fabric.failed_over_connections),
                violations=report.pcc_violations,
                measured_connections=report.measured_connections,
            )
        )
    return points


@dataclass(frozen=True)
class ChaosPoint:
    fault_seed: int
    faults_injected: int
    crashes: int
    relearns: int
    at_risk: int
    watchdog_forced: int
    pcc_violations: int
    updates_completed: int
    audit_ok: bool


def run_slow_path_chaos(
    seed: int = 7,
    fault_seeds: tuple = (101, 202, 303),
    scale: float = 0.05,
    horizon_s: float = 20.0,
) -> List[ChaosPoint]:
    """Sweep fault seeds over the hardened slow path; every run must audit
    clean regardless of what the plan injected."""
    from ..faults import run_chaos

    points: List[ChaosPoint] = []
    for fault_seed in fault_seeds:
        result = run_chaos(
            seed=seed, fault_seed=fault_seed, scale=scale, horizon_s=horizon_s
        )
        counters = result.switch.report()
        points.append(
            ChaosPoint(
                fault_seed=fault_seed,
                faults_injected=len(result.plan),
                crashes=int(counters["cpu_crashes"]),
                relearns=int(counters["relearns"]),
                at_risk=int(counters["at_risk_connections"]),
                watchdog_forced=int(counters["watchdog_forced_steps"]),
                pcc_violations=result.report.pcc_violations,
                updates_completed=int(counters["updates_completed"]),
                audit_ok=result.ok,
            )
        )
    return points


def main(seed: int = 7) -> str:
    from ..analysis import format_table

    points = run(seed=seed)
    rows = [
        (
            "yes" if p.update_before_failure else "no",
            p.failed_over,
            p.violations,
            f"{100 * p.broken_fraction_of_moved:.1f}",
        )
        for p in points
    ]
    table = format_table(
        (
            "update before failure",
            "connections failed over",
            "broken",
            "% of moved",
        ),
        rows,
        title="§7 switch failure: only old-version connections break",
    )
    chaos_points = run_slow_path_chaos(seed=seed)
    chaos_rows = [
        (
            p.fault_seed,
            p.faults_injected,
            p.crashes,
            p.relearns,
            p.at_risk,
            p.watchdog_forced,
            p.pcc_violations,
            p.updates_completed,
            "ok" if p.audit_ok else "FAILED",
        )
        for p in chaos_points
    ]
    chaos_table = format_table(
        (
            "fault seed",
            "faults",
            "crashes",
            "relearns",
            "at-risk",
            "forced steps",
            "PCC broken",
            "updates done",
            "audit",
        ),
        chaos_rows,
        title="slow-path chaos: hardened switch under seeded fault injection",
    )
    return (
        table
        + (
            "\nexpectation: without a preceding update every moved connection "
            "re-hashes identically (same VIPTable) and survives; with one, the "
            "old-version connections are exposed"
        )
        + "\n\n"
        + chaos_table
        + (
            "\nexpectation: every audit passes; violations, if any, are "
            "attributable to watchdog-forced (at-risk) connections"
        )
    )


if __name__ == "__main__":
    print(main())
