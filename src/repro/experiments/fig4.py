"""Figure 4: distribution of DIP downtime by root cause.

Samples the per-cause downtime models and reports each cause's CDF summary.

Paper anchors: upgrade downtime is 3 minutes at the median but 100 minutes
at the 99th percentile; provisioning causes no downtime.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis import Cdf, format_table
from ..netsim.updates import DOWNTIME_BY_CAUSE, RootCause


def run(seed: int = 4, samples: int = 20_000) -> Dict[RootCause, Optional[Cdf]]:
    rng = np.random.default_rng(seed)
    out: Dict[RootCause, Optional[Cdf]] = {}
    for cause, model in DOWNTIME_BY_CAUSE.items():
        if model is None:
            out[cause] = None
            continue
        out[cause] = Cdf.of(model.sample(rng, size=samples))
    return out


def main(seed: int = 4) -> str:
    cdfs = run(seed=seed)
    rows = []
    for cause, cdf in cdfs.items():
        if cdf is None:
            rows.append((cause.value, "-", "-", "no downtime"))
            continue
        rows.append(
            (
                cause.value,
                f"{cdf.median / 60.0:.1f}",
                f"{cdf.p99 / 60.0:.0f}",
                "",
            )
        )
    table = format_table(
        ("root cause", "median (min)", "p99 (min)", "note"),
        rows,
        title="Figure 4: DIP downtime duration by root cause",
    )
    return table + "\npaper anchor: upgrades -> 3 min median, 100 min p99"


if __name__ == "__main__":
    print(main())
