"""Figure 14: ConnTable memory saving from digests and versions.

For every cluster, the fractional SRAM saving of the compact designs
versus the naive full-5-tuple/full-DIP table, charging the versioned
design for its DIPPoolTable indirection.

Paper anchors: every cluster saves >40 %; PoPs ~85 % (digest+version);
Frontends ~50 % (digest only pays off; few, long connections); Backends
60-95 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import Cdf, format_table
from ..asicsim.sram import bytes_for_entries
from ..core.conn_table import memory_saving
from ..netsim.cluster import ClusterType
from ..traces import ClusterProfile, FleetSynthesizer
from .fig12 import live_versions_estimate


def pool_table_bytes(profile: ClusterProfile) -> int:
    versions = live_versions_estimate(profile.updates_per_min_p99)
    dip_bytes = 18 if profile.ipv6 else 6
    return bytes_for_entries(
        profile.num_vips * versions * profile.dips_per_vip, dip_bytes * 8 + 6
    )


def savings_for(profile: ClusterProfile) -> Dict[str, float]:
    conns = int(profile.active_conns_per_tor_p99)
    pool = pool_table_bytes(profile)
    return {
        "digest_only": memory_saving(conns, profile.ipv6, use_digest=True, use_version=False),
        "digest_version": memory_saving(
            conns, profile.ipv6, use_digest=True, use_version=True, dip_pool_bytes=pool
        ),
    }


@dataclass
class Fig14Result:
    digest_only: Dict[ClusterType, List[float]]
    digest_version: Dict[ClusterType, List[float]]


def run(seed: int = 14) -> Fig14Result:
    profiles = FleetSynthesizer(seed=seed).synthesize()
    digest_only: Dict[ClusterType, List[float]] = {k: [] for k in ClusterType}
    digest_version: Dict[ClusterType, List[float]] = {k: [] for k in ClusterType}
    for profile in profiles:
        savings = savings_for(profile)
        digest_only[profile.kind].append(savings["digest_only"])
        digest_version[profile.kind].append(savings["digest_version"])
    return Fig14Result(digest_only=digest_only, digest_version=digest_version)


def run_min_saving(result: Fig14Result) -> float:
    """Smallest saving across the whole fleet (paper: >40 %)."""
    all_best = []
    for kind in ClusterType:
        for a, b in zip(result.digest_only[kind], result.digest_version[kind]):
            all_best.append(max(a, b))
    return min(all_best) if all_best else 0.0


def main(seed: int = 14) -> str:
    result = run(seed=seed)
    rows = []
    for kind in ClusterType:
        d = Cdf.of(result.digest_only[kind])
        dv = Cdf.of(result.digest_version[kind])
        rows.append(
            (
                kind.value,
                f"{100 * d.median:.0f}",
                f"{100 * dv.median:.0f}",
            )
        )
    table = format_table(
        ("cluster type", "digest only: median saving %", "digest+version: median saving %"),
        rows,
        title="Figure 14: ConnTable memory saving vs naive layout",
    )
    anchors = (
        f"fleet-wide minimum best-design saving: {100 * run_min_saving(result):.0f}% "
        "(paper: all clusters >40%; PoPs ~85%, Frontends ~50%, Backends 60-95%)"
    )
    return table + "\n" + anchors


if __name__ == "__main__":
    print(main())
