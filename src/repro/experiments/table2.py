"""Table 2: additional hardware resources used by SilkRoad (1 M entries).

Computed by the resource model of :mod:`repro.asicsim.resources`: SilkRoad's
table geometries are costed from first principles, normalized by the
(calibrated) baseline switch.p4 usage vector.  At the paper's default
configuration the output matches Table 2 exactly by construction; the
interesting use is the ablation sweep (entry counts, digest widths, IPv4
vs IPv6), which scales from first principles.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_comparison
from ..asicsim.resources import PAPER_TABLE2, SilkRoadResourceConfig, table2


def run(config: SilkRoadResourceConfig = SilkRoadResourceConfig()) -> Dict[str, float]:
    return table2(config)


def sweep_entries(counts=(250_000, 500_000, 1_000_000, 2_000_000, 10_000_000)):
    """SRAM-driven scaling of the Table-2 percentages with table size."""
    out = {}
    for count in counts:
        out[count] = table2(SilkRoadResourceConfig(num_connections=count))
    return out


def main() -> str:
    measured = run()
    table = format_comparison(
        "Table 2: additional H/W resources (1M connections, % of switch.p4)",
        PAPER_TABLE2,
        measured,
        unit="%",
    )
    lines = [table, "", "scaling with ConnTable size (SRAM %):"]
    for count, row in sweep_entries().items():
        lines.append(f"  {count:>10,} entries -> {row['sram']:.1f}%")
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
