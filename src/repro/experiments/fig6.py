"""Figure 6: number of active connections per ToR switch across clusters.

CDF (across clusters) of the median and 99th-percentile per-minute
ConnTable snapshot size, normalized per ToR.

Paper anchors: the most loaded PoPs and Backends hold ~10 M and ~15 M
active connections per ToR respectively; Frontends hold far fewer (they
merge user-facing connections into a few persistent ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import Cdf, format_table
from ..netsim.cluster import ClusterType
from ..traces import ClusterProfile, FleetSynthesizer


@dataclass
class Fig6Result:
    profiles: List[ClusterProfile]

    def by_kind(self, kind: ClusterType) -> List[ClusterProfile]:
        return [p for p in self.profiles if p.kind is kind]

    def p99_cdf(self, kind: ClusterType) -> Cdf:
        return Cdf.of(p.active_conns_per_tor_p99 for p in self.by_kind(kind))

    def median_cdf(self, kind: ClusterType) -> Cdf:
        return Cdf.of(p.active_conns_per_tor_median for p in self.by_kind(kind))


def run(seed: int = 6) -> Fig6Result:
    return Fig6Result(profiles=FleetSynthesizer(seed=seed).synthesize())


def main(seed: int = 6) -> str:
    result = run(seed=seed)
    rows = []
    for kind in ClusterType:
        p99 = result.p99_cdf(kind)
        med = result.median_cdf(kind)
        rows.append(
            (
                kind.value,
                f"{med.median / 1e6:.2f}M",
                f"{p99.median / 1e6:.2f}M",
                f"{p99.quantile(1.0) / 1e6:.1f}M",
            )
        )
    table = format_table(
        (
            "cluster type",
            "median cluster (median snapshot)",
            "median cluster (p99 snapshot)",
            "peak cluster (p99 snapshot)",
        ),
        rows,
        title="Figure 6: active connections per ToR across clusters",
    )
    return table + "\npaper anchors: peak PoP ~10M, peak Backend ~15M, Frontends far fewer"


if __name__ == "__main__":
    print(main())
