"""The SilkRoad data plane as a P4-style program (§5.1, Figure 10).

The paper's prototype adds ~400 lines of P4 to ``switch.p4``; this module
is the equivalent program over :mod:`repro.p4`'s IR, plus the runtime
(control-plane) API the switch software would use:

Tables (Figure 10):

* ``vip_table_v4`` / ``vip_table_v6`` — (dst addr, dst port, proto) ->
  ``set_vip(vip_index, version, old_version, in_update)``,
* ``conn_table`` — (stage, bucket, digest) -> ``set_conn_version(v)``;
  the ingress control applies it once per cuckoo stage with the stage's
  own hash pair, first digest match wins (false positives and all),
* ``dip_group_table`` — (vip_index, version) -> ``select_member(base,
  size)`` (ECMP-group indirection: member = base + hash % size),
* ``dip_member_table`` — member index -> ``rewrite(dip, port)``,
* the **TransitTable** Bloom filter on a register array, written in
  step 1 and read on ConnTable misses in step 2,
* a learn trigger on ConnTable miss (the learning-filter event).

:meth:`SilkRoadP4.mirror_from` programs all of it from a live
:class:`~repro.core.silkroad.SilkRoadSwitch`, so tests can assert the
packet-level P4 pipeline forwards exactly like the object model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asicsim.hashing import HashUnit, base_hash, hash_family
from ..asicsim.registers import RegisterArray
from ..netsim.packet import DirectIP, VirtualIP
from .context import PacketContext
from .parser import is_tcp_syn, parse_packet
from .tables import Action, KeyField, MatchKind, Table, TableEntry

#: Update-state encoding in ``meta.vip_in_update``.
UPDATE_NONE = 0
UPDATE_STEP1 = 1
UPDATE_STEP2 = 2


@dataclass(frozen=True)
class ForwardingResult:
    """What happened to one packet."""

    forwarded: bool
    dip_ip: Optional[int] = None
    dip_port: Optional[int] = None
    version: Optional[int] = None
    conn_table_hit: bool = False
    transit_hit: bool = False
    learned: bool = False
    redirected_to_cpu: bool = False
    dropped: bool = False

    @property
    def dip(self) -> Optional[DirectIP]:
        if self.dip_ip is None or self.dip_port is None:
            return None
        return DirectIP(ip=self.dip_ip, port=self.dip_port, v6=self.dip_ip > 0xFFFFFFFF)


class SilkRoadP4:
    """The compiled SilkRoad pipeline: parser + tables + registers."""

    def __init__(
        self,
        conn_stages: int = 4,
        conn_buckets_per_stage: int = 4096,
        digest_bits: int = 16,
        transit_bytes: int = 256,
        transit_hash_ways: int = 4,
        seed: int = 0x51CC_0AD0,
        select_seed: int = 0xD1B0,
    ) -> None:
        self.conn_stages = conn_stages
        self.conn_buckets_per_stage = conn_buckets_per_stage
        self.digest_bits = digest_bits
        # The same hash families the ASIC model uses, so mirrored state
        # behaves identically.
        self._index_units = hash_family(conn_stages, base_seed=seed)
        self._digest_units = hash_family(conn_stages, base_seed=seed ^ 0xD16E57)
        self._select_unit = HashUnit(seed=select_seed)
        self._transit_units = hash_family(transit_hash_ways, base_seed=0xB100F)
        self.transit_register = RegisterArray(transit_bytes * 8, width=1)

        # --- actions ------------------------------------------------------
        def set_vip(ctx, vip_index, version, old_version, in_update):
            ctx.set("meta.vip_index", vip_index)
            ctx.set("meta.pool_version", version)
            ctx.set("meta.old_version", old_version)
            ctx.set("meta.vip_in_update", in_update)

        def set_conn_version(ctx, version):
            ctx.set("meta.pool_version", version)
            ctx.set("meta.conn_hit", 1)

        def select_member(ctx, base, size):
            offset = self._select_unit.index(ctx.five_tuple_bytes(), size)
            ctx.set("meta.member_index", base + offset)

        def rewrite_dst(ctx, dip_ip, dip_port):
            ip = ctx.ip_header
            ip["dst_addr"] = dip_ip
            ctx.l4_header["dst_port"] = dip_port

        self._set_vip = Action("set_vip", set_vip)
        self._set_conn_version = Action("set_conn_version", set_conn_version)
        self._select_member = Action("select_member", select_member)
        self._rewrite_dst = Action("rewrite_dst", rewrite_dst)

        def mark_drop(ctx):
            ctx.set("meta.drop", 1)

        self._mark_drop = Action("mark_drop", mark_drop)

        # --- tables ---------------------------------------------------------
        # UDP dst ports are normalized into the tcp header slot before the
        # VIP tables apply, so one key shape serves both protocols (the
        # real switch.p4 does this with shared L4 metadata).
        self.vip_table_v4 = Table(
            "vip_table_v4",
            key=[
                KeyField("ipv4.dst_addr"),
                KeyField("tcp.dst_port"),
            ],
            actions=[self._set_vip],
            default_action=self._mark_drop,
        )
        self.vip_table_v6 = Table(
            "vip_table_v6",
            key=[
                KeyField("ipv6.dst_addr"),
                KeyField("tcp.dst_port"),
            ],
            actions=[self._set_vip],
            default_action=self._mark_drop,
        )
        self.conn_table = Table(
            "conn_table",
            key=[
                KeyField("meta.conn_stage"),
                KeyField("meta.conn_bucket"),
                KeyField("meta.conn_digest"),
            ],
            actions=[self._set_conn_version],
            size=1 << 22,
        )
        self.dip_group_table = Table(
            "dip_group_table",
            key=[KeyField("meta.vip_index"), KeyField("meta.pool_version")],
            actions=[self._select_member],
            default_action=self._mark_drop,
            size=1 << 16,
        )
        self.dip_member_table = Table(
            "dip_member_table",
            key=[KeyField("meta.member_index")],
            actions=[self._rewrite_dst],
            default_action=self._mark_drop,
            size=1 << 24,
        )

        # Control-plane bookkeeping.
        self._vip_indexes: Dict[VirtualIP, int] = {}
        self._next_vip_index = 1
        self._next_member_base = 0
        self._group_bases: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.learned_digests: List[Tuple[int, int, int, bytes]] = []

    # ------------------------------------------------------------------
    # Control-plane API (what the switch CPU programs)
    # ------------------------------------------------------------------

    def vip_index(self, vip: VirtualIP) -> int:
        index = self._vip_indexes.get(vip)
        if index is None:
            index = self._next_vip_index
            self._next_vip_index += 1
            self._vip_indexes[vip] = index
        return index

    def program_vip(
        self,
        vip: VirtualIP,
        version: int,
        old_version: Optional[int] = None,
        update_state: int = UPDATE_NONE,
    ) -> None:
        """(Re)program a VIP's entry in the v4/v6 VIP table."""
        index = self.vip_index(vip)
        table = self.vip_table_v6 if vip.v6 else self.vip_table_v4
        match = (vip.ip, vip.port)
        try:
            table.remove(match)
        except KeyError:
            pass
        table.insert(
            TableEntry(
                match=match,
                action=self._set_vip,
                params={
                    "vip_index": index,
                    "version": version,
                    "old_version": old_version if old_version is not None else version,
                    "in_update": update_state,
                },
            )
        )

    def program_pool(self, vip: VirtualIP, version: int, slots) -> None:
        """Program one (VIP, version) pool into group + member tables."""
        index = self.vip_index(vip)
        old = self._group_bases.pop((index, version), None)
        if old is not None:
            base, size = old
            self.dip_group_table.remove((index, version))
            for offset in range(size):
                self.dip_member_table.remove((base + offset,))
        base = self._next_member_base
        self._next_member_base += len(slots)
        self._group_bases[(index, version)] = (base, len(slots))
        self.dip_group_table.insert(
            TableEntry(
                match=(index, version),
                action=self._select_member,
                params={"base": base, "size": len(slots)},
            )
        )
        for offset, dip in enumerate(slots):
            self.dip_member_table.insert(
                TableEntry(
                    match=(base + offset,),
                    action=self._rewrite_dst,
                    params={"dip_ip": dip.ip, "dip_port": dip.port},
                )
            )

    def drop_pool(self, vip: VirtualIP, version: int) -> None:
        index = self.vip_index(vip)
        entry = self._group_bases.pop((index, version), None)
        if entry is None:
            return
        base, size = entry
        self.dip_group_table.remove((index, version))
        for offset in range(size):
            self.dip_member_table.remove((base + offset,))

    def conn_profile(self, key: bytes) -> List[Tuple[int, int]]:
        """(bucket, digest) of a connection key at every stage.

        Single-pass: one byte hash of the key, then per-stage seeded
        derivations — the same scheme (and therefore the same values) as
        the object model's cuckoo table.
        """
        base = base_hash(key)
        return [
            (
                self._index_units[s].index_base(base, self.conn_buckets_per_stage),
                self._digest_units[s].digest_base(base, self.digest_bits),
            )
            for s in range(self.conn_stages)
        ]

    def install_connection(self, key: bytes, stage: int, version: int) -> None:
        bucket, digest = self.conn_profile(key)[stage]
        self.conn_table.insert(
            TableEntry(
                match=(stage, bucket, digest),
                action=self._set_conn_version,
                params={"version": version},
            )
        )

    def remove_connection(self, key: bytes, stage: int) -> None:
        bucket, digest = self.conn_profile(key)[stage]
        self.conn_table.remove((stage, bucket, digest))

    def transit_mark(self, key: bytes) -> None:
        base = base_hash(key)
        for unit in self._transit_units:
            self.transit_register.write(
                unit.index_base(base, self.transit_register.size), 1
            )

    def transit_clear(self) -> None:
        self.transit_register.clear()

    def _transit_check(self, key: bytes) -> bool:
        base = base_hash(key)
        return all(
            self.transit_register.read(unit.index_base(base, self.transit_register.size))
            for unit in self._transit_units
        )

    # ------------------------------------------------------------------
    # Ingress control (Figure 10)
    # ------------------------------------------------------------------

    def process(self, frame: bytes) -> ForwardingResult:
        """Run one packet through parser + SilkRoad ingress."""
        ctx = parse_packet(frame)
        if not (ctx.is_valid("tcp") or ctx.is_valid("udp")):
            return ForwardingResult(forwarded=False, dropped=True)
        # UDP packets reuse the tcp.dst_port key slot via normalization.
        if ctx.is_valid("udp") and not ctx.is_valid("tcp"):
            tcp = ctx.header("tcp")
            tcp.set_valid()
            tcp["src_port"] = ctx.header("udp")["src_port"]
            tcp["dst_port"] = ctx.header("udp")["dst_port"]

        # --- VIPTable: which service, which version(s), update state.
        vip_table = self.vip_table_v6 if ctx.is_valid("ipv6") else self.vip_table_v4
        vip_result = vip_table.apply(ctx)
        if not vip_result.hit:
            return ForwardingResult(forwarded=False, dropped=True)

        key = ctx.five_tuple_bytes()
        new_version = ctx.get("meta.pool_version")
        old_version = ctx.get("meta.old_version")
        update_state = ctx.get("meta.vip_in_update")

        # --- ConnTable: one lookup per cuckoo stage, first hit wins.
        conn_hit = False
        for stage, (bucket, digest) in enumerate(self.conn_profile(key)):
            ctx.set("meta.conn_stage", stage)
            ctx.set("meta.conn_bucket", bucket)
            ctx.set("meta.conn_digest", digest)
            if self.conn_table.apply(ctx).hit:
                conn_hit = True
                break

        transit_hit = False
        learned = False
        redirected = False
        if conn_hit:
            # A SYN hitting an existing entry indicates a digest false
            # positive: redirect to the CPU (§4.2).
            if is_tcp_syn(ctx):
                redirected = True
        else:
            learned = True  # new connection: trigger the learning filter
            if update_state == UPDATE_STEP1:
                # Remember the pending connection (write-only phase).
                self.transit_mark(key)
            elif update_state == UPDATE_STEP2:
                transit_hit = self._transit_check(key)
                if transit_hit:
                    ctx.set("meta.pool_version", old_version)
                    if is_tcp_syn(ctx):
                        redirected = True  # potential filter false positive
            self.learned_digests.append(
                (
                    ctx.get("meta.conn_stage"),
                    ctx.get("meta.conn_bucket"),
                    ctx.get("meta.conn_digest"),
                    key,
                )
            )

        # --- DIP selection through the versioned pool tables.
        if not self.dip_group_table.apply(ctx).hit:
            return ForwardingResult(forwarded=False, dropped=True)
        if not self.dip_member_table.apply(ctx).hit:
            return ForwardingResult(forwarded=False, dropped=True)

        ip = ctx.ip_header
        return ForwardingResult(
            forwarded=True,
            dip_ip=ip["dst_addr"],
            dip_port=ctx.l4_header["dst_port"],
            version=ctx.get("meta.pool_version"),
            conn_table_hit=conn_hit,
            transit_hit=transit_hit,
            learned=learned,
            redirected_to_cpu=redirected,
        )

    # ------------------------------------------------------------------
    # State mirroring from the object model
    # ------------------------------------------------------------------

    def mirror_from(self, switch) -> None:
        """Program every table from a live SilkRoadSwitch.

        After mirroring, ``process`` forwards packets exactly as the
        object model decides (same hash seeds, same pools, same pending
        filter), which the test suite asserts.
        """
        from ..core.silkroad import SilkRoadSwitch  # local: avoid cycle

        assert isinstance(switch, SilkRoadSwitch)
        # VIPs and update state.
        for vip in switch.vip_table.vips():
            entry = switch.vip_table.lookup(vip)
            from ..core.pcc_update import Phase

            phase = switch.coordinator.phase(vip)
            if entry.in_transition:
                state = UPDATE_STEP2
            elif phase is Phase.STEP1:
                state = UPDATE_STEP1
            else:
                state = UPDATE_NONE
            self.program_vip(
                vip,
                version=entry.current_version,
                old_version=entry.old_version,
                update_state=state,
            )
            pools = switch.dip_pools
            for version in pools.live_versions(vip):
                self.program_pool(vip, version, pools.pool(vip, version).slots)
        # ConnTable entries (stage + bucket + digest per resident key).
        self.conn_table.clear()
        cuckoo = switch.conn_table._table
        self.conn_buckets_per_stage = cuckoo.buckets_per_stage
        self.conn_stages = cuckoo.stages
        self._index_units = cuckoo._index_units
        self._digest_units = cuckoo._digest_units
        for key in cuckoo.keys():
            location = cuckoo.location_of(key)
            version = cuckoo.get_exact(key)
            bucket, digest = (
                cuckoo._profiles[key][location.stage][0],
                cuckoo._profiles[key][location.stage][1],
            )
            self.conn_table.insert(
                TableEntry(
                    match=(location.stage, bucket, digest),
                    action=self._set_conn_version,
                    params={"version": version},
                )
            )
        # TransitTable contents.
        self.transit_clear()
        for key in switch.transit._filter._members:
            self.transit_mark(key)
