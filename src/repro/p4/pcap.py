"""Minimal libpcap (classic ``.pcap``) reader/writer.

Lets the P4 pipeline consume and produce standard capture files: generate
test traffic with :func:`~repro.p4.parser.build_packet`, save it, replay a
capture through :class:`~repro.p4.silkroad.SilkRoadP4`, and inspect the
rewritten packets in any pcap tool.  Classic format only (magic
``0xA1B2C3D4``, microsecond timestamps, Ethernet link type) — ubiquitous
and enough for the reproduction's needs.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from pathlib import Path
from typing import BinaryIO, Iterable, List, Tuple, Union

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

#: (timestamp seconds, frame bytes)
TimedFrame = Tuple[float, bytes]

PathOrFile = Union[str, Path, BinaryIO]


class PcapError(ValueError):
    """Raised on malformed capture files."""


@contextmanager
def _open_for(target: PathOrFile, mode: str):
    """Yield a binary handle for ``target``; close it iff we opened it.

    A context manager so the handle provably closes on every exit path —
    including a :class:`PcapError` raised mid-parse.  Caller-supplied file
    objects stay open (the caller owns their lifecycle).
    """
    if isinstance(target, (str, Path)):
        handle = open(target, mode)
        try:
            yield handle
        finally:
            handle.close()
    else:
        yield target


def write_pcap(target: PathOrFile, frames: Iterable[TimedFrame]) -> int:
    """Write ``(timestamp, frame)`` pairs; returns the frame count."""
    with _open_for(target, "wb") as handle:
        handle.write(
            struct.pack(
                "<IHHiIII",
                PCAP_MAGIC,
                2,  # version major
                4,  # version minor
                0,  # thiszone
                0,  # sigfigs
                65_535,  # snaplen
                LINKTYPE_ETHERNET,
            )
        )
        count = 0
        for ts, frame in frames:
            seconds = int(ts)
            micros = int(round((ts - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            handle.write(
                struct.pack("<IIII", seconds, micros, len(frame), len(frame))
            )
            handle.write(frame)
            count += 1
        return count


def read_pcap(source: PathOrFile) -> List[TimedFrame]:
    """Read every frame of a classic pcap file."""
    with _open_for(source, "rb") as handle:
        header = handle.read(24)
        if len(header) < 24:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            endian = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            endian = ">"
        else:
            raise PcapError(f"bad pcap magic: {magic:#x}")
        linktype = struct.unpack(endian + "IHHiIII", header)[6]
        if linktype != LINKTYPE_ETHERNET:
            raise PcapError(f"unsupported link type {linktype}")
        frames: List[TimedFrame] = []
        while True:
            record = handle.read(16)
            if not record:
                break
            if len(record) < 16:
                raise PcapError("truncated pcap record header")
            seconds, micros, incl_len, _orig_len = struct.unpack(
                endian + "IIII", record
            )
            data = handle.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated pcap record body")
            frames.append((seconds + micros / 1e6, data))
        return frames
