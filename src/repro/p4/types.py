"""P4-style header types and instances.

The paper's prototype is ~400 lines of P4 on top of ``switch.p4``.  This
package models the relevant subset of P4-16: headers are named bundles of
fixed-width fields; a parsed packet carries header *instances* (field
values + validity) plus metadata buses.  The SilkRoad program
(:mod:`repro.p4.silkroad`) is then expressed as match-action tables over
these headers, and the interpreter executes packets through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FieldSpec:
    """One header field: a name and a bit width."""

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError("field width must be positive")

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1


@dataclass(frozen=True)
class HeaderSpec:
    """A named, ordered bundle of fields (a P4 ``header`` type)."""

    name: str
    fields: Tuple[FieldSpec, ...]

    def field(self, name: str) -> FieldSpec:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"{self.name} has no field {name!r}")

    @property
    def bits(self) -> int:
        return sum(f.bits for f in self.fields)

    @property
    def bytes(self) -> int:
        if self.bits % 8:
            raise ValueError(f"{self.name} is not byte aligned")
        return self.bits // 8


class HeaderInstance:
    """A header's runtime state: validity plus field values."""

    def __init__(self, spec: HeaderSpec) -> None:
        self.spec = spec
        self.valid = False
        self._values: Dict[str, int] = {f.name: 0 for f in spec.fields}

    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def __setitem__(self, name: str, value: int) -> None:
        spec = self.spec.field(name)
        if not 0 <= value <= spec.max_value:
            raise ValueError(
                f"{self.spec.name}.{name} = {value} exceeds {spec.bits} bits"
            )
        self._values[name] = value

    def set_valid(self) -> None:
        self.valid = True

    def set_invalid(self) -> None:
        self.valid = False
        for key in self._values:
            self._values[key] = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "valid" if self.valid else "invalid"
        return f"<{self.spec.name} {state} {self._values}>"


# ----------------------------------------------------------------------
# Standard headers used by the SilkRoad program.
# ----------------------------------------------------------------------

ETHERNET = HeaderSpec(
    "ethernet",
    (
        FieldSpec("dst_addr", 48),
        FieldSpec("src_addr", 48),
        FieldSpec("ether_type", 16),
    ),
)

IPV4 = HeaderSpec(
    "ipv4",
    (
        FieldSpec("version", 4),
        FieldSpec("ihl", 4),
        FieldSpec("diffserv", 8),
        FieldSpec("total_len", 16),
        FieldSpec("identification", 16),
        FieldSpec("flags", 3),
        FieldSpec("frag_offset", 13),
        FieldSpec("ttl", 8),
        FieldSpec("protocol", 8),
        FieldSpec("hdr_checksum", 16),
        FieldSpec("src_addr", 32),
        FieldSpec("dst_addr", 32),
    ),
)

IPV6 = HeaderSpec(
    "ipv6",
    (
        FieldSpec("version", 4),
        FieldSpec("traffic_class", 8),
        FieldSpec("flow_label", 20),
        FieldSpec("payload_len", 16),
        FieldSpec("next_hdr", 8),
        FieldSpec("hop_limit", 8),
        FieldSpec("src_addr", 128),
        FieldSpec("dst_addr", 128),
    ),
)

TCP = HeaderSpec(
    "tcp",
    (
        FieldSpec("src_port", 16),
        FieldSpec("dst_port", 16),
        FieldSpec("seq_no", 32),
        FieldSpec("ack_no", 32),
        FieldSpec("data_offset", 4),
        FieldSpec("reserved", 4),
        FieldSpec("flags", 8),
        FieldSpec("window", 16),
        FieldSpec("checksum", 16),
        FieldSpec("urgent_ptr", 16),
    ),
)

UDP = HeaderSpec(
    "udp",
    (
        FieldSpec("src_port", 16),
        FieldSpec("dst_port", 16),
        FieldSpec("length", 16),
        FieldSpec("checksum", 16),
    ),
)

#: TCP flag bits.
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_ACK = 0x10

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17


#: Metadata the SilkRoad control flow carries between tables (the paper
#: notes these cost under 1 % of PHV bits).
SILKROAD_METADATA = HeaderSpec(
    "silkroad_md",
    (
        FieldSpec("conn_stage", 4),
        FieldSpec("conn_bucket", 16),
        FieldSpec("conn_digest", 16),
        FieldSpec("pool_version", 6),
        FieldSpec("old_version", 6),
        # 0 = no update in flight, 1 = step 1 (filter write-only),
        # 2 = step 2 (filter read-only).
        FieldSpec("vip_in_update", 2),
        FieldSpec("conn_hit", 1),
        FieldSpec("transit_hit", 1),
        FieldSpec("vip_index", 16),
        FieldSpec("member_index", 24),
        FieldSpec("redirect_to_cpu", 1),
        FieldSpec("drop", 1),
        FieldSpec("learn", 1),
    ),
)

STANDARD_METADATA = HeaderSpec(
    "standard_md",
    (
        FieldSpec("ingress_port", 9),
        FieldSpec("egress_spec", 9),
        FieldSpec("packet_length", 16),
    ),
)
