"""Match-action tables and actions (P4 ``table`` / ``action`` equivalents).

Tables declare a key (a list of ``header.field`` paths with match kinds)
and a set of actions; the control plane installs entries at runtime.  The
interpreter applies a table to a packet context: build the key from the
context, find the matching entry (exact > ternary by priority), run its
action with its bound parameters, and report hit/miss — the same contract
bmv2 gives a P4 program.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .context import PacketContext

#: An action body: ``fn(ctx, **params)``.
ActionFn = Callable[..., None]


@dataclass(frozen=True)
class Action:
    """A named action with a Python body (its 'primitive ops')."""

    name: str
    body: ActionFn

    def __call__(self, ctx: PacketContext, **params) -> None:
        self.body(ctx, **params)


def no_op(ctx: PacketContext) -> None:
    """The P4 ``NoAction``."""


NO_ACTION = Action("NoAction", no_op)


class MatchKind(enum.Enum):
    EXACT = "exact"
    TERNARY = "ternary"


@dataclass(frozen=True)
class KeyField:
    """One component of a table key."""

    path: str  # "header.field", "meta.field", or "standard.field"
    kind: MatchKind = MatchKind.EXACT


@dataclass(frozen=True)
class TableEntry:
    """An installed entry: match values -> action(params)."""

    match: Tuple[int, ...]
    action: Action
    params: Dict[str, int] = field(default_factory=dict)
    #: Per-field masks for ternary keys (ignored for exact).
    masks: Optional[Tuple[int, ...]] = None
    priority: int = 0


@dataclass
class ApplyResult:
    """Outcome of applying a table to a packet."""

    hit: bool
    action_name: str


class Table:
    """One match-action table."""

    def __init__(
        self,
        name: str,
        key: Sequence[KeyField],
        actions: Sequence[Action],
        default_action: Action = NO_ACTION,
        default_params: Optional[Dict[str, int]] = None,
        size: int = 1024,
    ) -> None:
        if not key:
            raise ValueError("a table needs at least one key field")
        self.name = name
        self.key = list(key)
        self.actions = {a.name: a for a in actions}
        self.actions.setdefault(NO_ACTION.name, NO_ACTION)
        self.default_action = default_action
        self.default_params = dict(default_params or {})
        self.size = size
        self._exact: Dict[Tuple[int, ...], TableEntry] = {}
        self._ternary: List[TableEntry] = []
        self.hits = 0
        self.misses = 0
        self._all_exact = all(k.kind is MatchKind.EXACT for k in self.key)

    # -- control plane -----------------------------------------------------

    def insert(self, entry: TableEntry) -> None:
        if entry.action.name not in self.actions:
            raise ValueError(
                f"action {entry.action.name!r} not declared for table {self.name}"
            )
        if len(entry.match) != len(self.key):
            raise ValueError("match width does not equal key width")
        if len(self._exact) + len(self._ternary) >= self.size:
            raise TableCapacityError(f"table {self.name} is full ({self.size})")
        if self._all_exact and entry.masks is None:
            if entry.match in self._exact:
                raise ValueError(f"duplicate entry in {self.name}: {entry.match}")
            self._exact[entry.match] = entry
        else:
            self._ternary.append(entry)
            self._ternary.sort(key=lambda e: -e.priority)

    def remove(self, match: Tuple[int, ...]) -> None:
        if match in self._exact:
            del self._exact[match]
            return
        for i, entry in enumerate(self._ternary):
            if entry.match == match:
                del self._ternary[i]
                return
        raise KeyError(f"no entry {match} in table {self.name}")

    def entry_for(self, match: Tuple[int, ...]) -> Optional[TableEntry]:
        return self._exact.get(match)

    def set_default(self, action: Action, **params) -> None:
        if action.name not in self.actions:
            raise ValueError(f"action {action.name!r} not declared")
        self.default_action = action
        self.default_params = params

    def clear(self) -> None:
        self._exact.clear()
        self._ternary.clear()

    def __len__(self) -> int:
        return len(self._exact) + len(self._ternary)

    # -- data plane ----------------------------------------------------------

    def build_key(self, ctx: PacketContext) -> Tuple[int, ...]:
        return tuple(ctx.get(k.path) for k in self.key)

    def apply(self, ctx: PacketContext) -> ApplyResult:
        key = self.build_key(ctx)
        entry = self._exact.get(key)
        if entry is None:
            for candidate in self._ternary:
                if self._ternary_match(candidate, key):
                    entry = candidate
                    break
        if entry is None:
            self.misses += 1
            self.default_action(ctx, **self.default_params)
            return ApplyResult(hit=False, action_name=self.default_action.name)
        self.hits += 1
        entry.action(ctx, **entry.params)
        return ApplyResult(hit=True, action_name=entry.action.name)

    @staticmethod
    def _ternary_match(entry: TableEntry, key: Tuple[int, ...]) -> bool:
        masks = entry.masks or tuple(~0 for _ in key)
        return all(
            (k & mask) == (m & mask)
            for k, m, mask in zip(key, entry.match, masks)
        )


class TableCapacityError(RuntimeError):
    """Raised when a table has no room for another entry."""
