"""A P4-16-flavoured IR, packet parser, and the SilkRoad program.

The paper's prototype is ~400 lines of P4 compiled to a programmable
ASIC (§5.1); this package expresses the same data plane over a small
match-action IR and executes real packet bytes through it.  The test
suite asserts the P4 pipeline forwards exactly like the object model in
:mod:`repro.core` after mirroring its table state.
"""

from .context import InvalidHeaderAccess, PacketContext
from .emit import emit_p4, emit_to_file
from .parser import ParseError, build_packet, is_tcp_syn, parse_packet
from .pcap import PcapError, read_pcap, write_pcap
from .silkroad import (
    ForwardingResult,
    SilkRoadP4,
    UPDATE_NONE,
    UPDATE_STEP1,
    UPDATE_STEP2,
)
from .tables import (
    Action,
    ApplyResult,
    KeyField,
    MatchKind,
    NO_ACTION,
    Table,
    TableCapacityError,
    TableEntry,
)
from .types import (
    ETHERNET,
    FieldSpec,
    HeaderInstance,
    HeaderSpec,
    IPV4,
    IPV6,
    SILKROAD_METADATA,
    TCP,
    UDP,
)

__all__ = [
    "Action",
    "ApplyResult",
    "ETHERNET",
    "FieldSpec",
    "ForwardingResult",
    "HeaderInstance",
    "HeaderSpec",
    "IPV4",
    "IPV6",
    "InvalidHeaderAccess",
    "KeyField",
    "MatchKind",
    "NO_ACTION",
    "PacketContext",
    "ParseError",
    "PcapError",
    "SILKROAD_METADATA",
    "SilkRoadP4",
    "TCP",
    "Table",
    "TableCapacityError",
    "TableEntry",
    "UDP",
    "UPDATE_NONE",
    "UPDATE_STEP1",
    "UPDATE_STEP2",
    "build_packet",
    "emit_p4",
    "emit_to_file",
    "is_tcp_syn",
    "parse_packet",
    "read_pcap",
    "write_pcap",
]
