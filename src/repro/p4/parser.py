"""Byte-level packet parser and deparser (P4 ``parser`` equivalent).

Parses Ethernet / IPv4 / IPv6 / TCP / UDP from raw bytes into header
instances, and serializes them back.  Also provides builders that turn the
simulator's :class:`~repro.netsim.packet.FiveTuple` into real packets, so
the P4 pipeline is exercised on actual wire formats.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..netsim.packet import FiveTuple
from .context import PacketContext
from .types import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    TCP_ACK,
    TCP_SYN,
)


class ParseError(ValueError):
    """Raised on truncated or unsupported packets."""


def parse_packet(data: bytes, ctx: Optional[PacketContext] = None) -> PacketContext:
    """Parse a raw frame into a packet context (Ethernet -> IP -> L4)."""
    if ctx is None:
        ctx = PacketContext()
    if len(data) < 14:
        raise ParseError("frame shorter than an Ethernet header")
    eth = ctx.header("ethernet")
    eth.set_valid()
    eth["dst_addr"] = int.from_bytes(data[0:6], "big")
    eth["src_addr"] = int.from_bytes(data[6:12], "big")
    eth["ether_type"] = int.from_bytes(data[12:14], "big")
    ctx.standard["packet_length"] = min(len(data), 0xFFFF)
    payload = data[14:]
    if eth["ether_type"] == ETHERTYPE_IPV4:
        payload = _parse_ipv4(ctx, payload)
    elif eth["ether_type"] == ETHERTYPE_IPV6:
        payload = _parse_ipv6(ctx, payload)
    else:
        return ctx  # non-IP: nothing more to parse
    ip = ctx.ip_header
    proto = ip["protocol"] if ctx.is_valid("ipv4") else ip["next_hdr"]
    ctx.l4_proto = proto
    if proto == IP_PROTO_TCP:
        _parse_tcp(ctx, payload)
    elif proto == IP_PROTO_UDP:
        _parse_udp(ctx, payload)
    return ctx


def _parse_ipv4(ctx: PacketContext, data: bytes) -> bytes:
    if len(data) < 20:
        raise ParseError("truncated IPv4 header")
    ipv4 = ctx.header("ipv4")
    ipv4.set_valid()
    ipv4["version"] = data[0] >> 4
    ipv4["ihl"] = data[0] & 0xF
    if ipv4["version"] != 4:
        raise ParseError("bad IPv4 version")
    ipv4["diffserv"] = data[1]
    ipv4["total_len"] = int.from_bytes(data[2:4], "big")
    ipv4["identification"] = int.from_bytes(data[4:6], "big")
    frag = int.from_bytes(data[6:8], "big")
    ipv4["flags"] = frag >> 13
    ipv4["frag_offset"] = frag & 0x1FFF
    ipv4["ttl"] = data[8]
    ipv4["protocol"] = data[9]
    ipv4["hdr_checksum"] = int.from_bytes(data[10:12], "big")
    ipv4["src_addr"] = int.from_bytes(data[12:16], "big")
    ipv4["dst_addr"] = int.from_bytes(data[16:20], "big")
    return data[ipv4["ihl"] * 4 :]


def _parse_ipv6(ctx: PacketContext, data: bytes) -> bytes:
    if len(data) < 40:
        raise ParseError("truncated IPv6 header")
    ipv6 = ctx.header("ipv6")
    ipv6.set_valid()
    first = int.from_bytes(data[0:4], "big")
    ipv6["version"] = first >> 28
    if ipv6["version"] != 6:
        raise ParseError("bad IPv6 version")
    ipv6["traffic_class"] = (first >> 20) & 0xFF
    ipv6["flow_label"] = first & 0xFFFFF
    ipv6["payload_len"] = int.from_bytes(data[4:6], "big")
    ipv6["next_hdr"] = data[6]
    ipv6["hop_limit"] = data[7]
    ipv6["src_addr"] = int.from_bytes(data[8:24], "big")
    ipv6["dst_addr"] = int.from_bytes(data[24:40], "big")
    return data[40:]


def _parse_tcp(ctx: PacketContext, data: bytes) -> None:
    if len(data) < 20:
        raise ParseError("truncated TCP header")
    tcp = ctx.header("tcp")
    tcp.set_valid()
    tcp["src_port"] = int.from_bytes(data[0:2], "big")
    tcp["dst_port"] = int.from_bytes(data[2:4], "big")
    tcp["seq_no"] = int.from_bytes(data[4:8], "big")
    tcp["ack_no"] = int.from_bytes(data[8:12], "big")
    tcp["data_offset"] = data[12] >> 4
    tcp["reserved"] = data[12] & 0xF
    tcp["flags"] = data[13]
    tcp["window"] = int.from_bytes(data[14:16], "big")
    tcp["checksum"] = int.from_bytes(data[16:18], "big")
    tcp["urgent_ptr"] = int.from_bytes(data[18:20], "big")


def _parse_udp(ctx: PacketContext, data: bytes) -> None:
    if len(data) < 8:
        raise ParseError("truncated UDP header")
    udp = ctx.header("udp")
    udp.set_valid()
    udp["src_port"] = int.from_bytes(data[0:2], "big")
    udp["dst_port"] = int.from_bytes(data[2:4], "big")
    udp["length"] = int.from_bytes(data[4:6], "big")
    udp["checksum"] = int.from_bytes(data[6:8], "big")


# ----------------------------------------------------------------------
# Builders / deparser
# ----------------------------------------------------------------------


def build_packet(
    five_tuple: FiveTuple,
    syn: bool = False,
    payload: bytes = b"",
    src_mac: int = 0x02_00_00_00_00_01,
    dst_mac: int = 0x02_00_00_00_00_02,
) -> bytes:
    """Serialize a connection's packet to wire bytes (TCP or UDP)."""
    if five_tuple.proto == IP_PROTO_TCP:
        flags = TCP_SYN if syn else TCP_ACK
        l4 = struct.pack(
            ">HHIIBBHHH",
            five_tuple.src_port,
            five_tuple.dst_port,
            0,
            0,
            5 << 4,
            flags,
            0xFFFF,
            0,
            0,
        )
    elif five_tuple.proto == IP_PROTO_UDP:
        l4 = struct.pack(
            ">HHHH", five_tuple.src_port, five_tuple.dst_port, 8 + len(payload), 0
        )
    else:
        raise ParseError(f"unsupported protocol {five_tuple.proto}")
    l4 += payload

    if five_tuple.v6:
        ip = struct.pack(
            ">IHBB16s16s",
            6 << 28,
            len(l4),
            five_tuple.proto,
            64,
            five_tuple.src_ip.to_bytes(16, "big"),
            five_tuple.dst_ip.to_bytes(16, "big"),
        )
        ether_type = ETHERTYPE_IPV6
    else:
        total_len = 20 + len(l4)
        ip = struct.pack(
            ">BBHHHBBHII",
            (4 << 4) | 5,
            0,
            total_len,
            0,
            0,
            64,
            five_tuple.proto,
            0,
            five_tuple.src_ip,
            five_tuple.dst_ip,
        )
        ether_type = ETHERTYPE_IPV4
    eth = (
        dst_mac.to_bytes(6, "big")
        + src_mac.to_bytes(6, "big")
        + ether_type.to_bytes(2, "big")
    )
    return eth + ip + l4


def is_tcp_syn(ctx: PacketContext) -> bool:
    """True for a SYN without ACK (a connection's first packet)."""
    if not ctx.is_valid("tcp"):
        return False
    flags = ctx.header("tcp")["flags"]
    return bool(flags & TCP_SYN) and not flags & TCP_ACK
