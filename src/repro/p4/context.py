"""The per-packet execution context (headers + metadata buses)."""

from __future__ import annotations

from typing import Dict, Optional

from .types import (
    ETHERNET,
    HeaderInstance,
    HeaderSpec,
    IPV4,
    IPV6,
    SILKROAD_METADATA,
    STANDARD_METADATA,
    TCP,
    UDP,
)


class PacketContext:
    """Everything a packet carries through the pipeline.

    Equivalent to P4's ``headers`` + ``metadata`` arguments: parsed header
    instances, the user metadata bus, and standard metadata.
    """

    def __init__(self, extra_headers: Optional[Dict[str, HeaderSpec]] = None) -> None:
        self.headers: Dict[str, HeaderInstance] = {
            "ethernet": HeaderInstance(ETHERNET),
            "ipv4": HeaderInstance(IPV4),
            "ipv6": HeaderInstance(IPV6),
            "tcp": HeaderInstance(TCP),
            "udp": HeaderInstance(UDP),
        }
        for name, spec in (extra_headers or {}).items():
            self.headers[name] = HeaderInstance(spec)
        self.meta = HeaderInstance(SILKROAD_METADATA)
        self.meta.set_valid()
        self.standard = HeaderInstance(STANDARD_METADATA)
        self.standard.set_valid()
        #: IP protocol number recorded by the parser; survives the UDP->TCP
        #: key-slot normalization the SilkRoad ingress performs.
        self.l4_proto: Optional[int] = None

    def header(self, name: str) -> HeaderInstance:
        return self.headers[name]

    # -- field access by "header.field" path (table keys use this) --------

    def get(self, path: str) -> int:
        header, _, field = path.partition(".")
        if header == "meta":
            return self.meta[field]
        if header == "standard":
            return self.standard[field]
        instance = self.headers[header]
        if not instance.valid:
            raise InvalidHeaderAccess(f"reading {path} of an invalid header")
        return instance[field]

    def set(self, path: str, value: int) -> None:
        header, _, field = path.partition(".")
        if header == "meta":
            self.meta[field] = value
            return
        if header == "standard":
            self.standard[field] = value
            return
        instance = self.headers[header]
        if not instance.valid:
            raise InvalidHeaderAccess(f"writing {path} of an invalid header")
        instance[field] = value

    def is_valid(self, header: str) -> bool:
        return self.headers[header].valid

    # -- L4/L3 convenience views ------------------------------------------

    @property
    def ip_header(self) -> HeaderInstance:
        if self.headers["ipv4"].valid:
            return self.headers["ipv4"]
        if self.headers["ipv6"].valid:
            return self.headers["ipv6"]
        raise InvalidHeaderAccess("no IP header parsed")

    @property
    def l4_header(self) -> HeaderInstance:
        if self.headers["tcp"].valid:
            return self.headers["tcp"]
        if self.headers["udp"].valid:
            return self.headers["udp"]
        raise InvalidHeaderAccess("no L4 header parsed")

    def five_tuple_bytes(self) -> bytes:
        """Canonical connection key, matching FiveTuple.key_bytes()."""
        import struct

        ip = self.ip_header
        l4 = self.l4_header
        if self.l4_proto is not None:
            proto = self.l4_proto
        else:
            proto = 6 if self.headers["tcp"].valid else 17
        if ip.spec is IPV6:
            return struct.pack(
                ">16s16sHHB",
                ip["src_addr"].to_bytes(16, "big"),
                ip["dst_addr"].to_bytes(16, "big"),
                l4["src_port"],
                l4["dst_port"],
                proto,
            )
        return struct.pack(
            ">IIHHB",
            ip["src_addr"],
            ip["dst_addr"],
            l4["src_port"],
            l4["dst_port"],
            proto,
        )


class InvalidHeaderAccess(RuntimeError):
    """Raised when reading/writing a field of an unparsed header."""
