"""Shared runner options: replay-driver and observability knobs.

Every batch runner (``run_chaos``, ``run_fleet``, their sharded variants,
``run_fleet_partitioned``, ``run_sharded``) and the serving mode accept
the same two axes of configuration:

* :class:`DriverOptions` — which replay driver executes arrivals
  (chunked-arrival batched vs the scalar event-at-a-time oracle) and the
  chunk size.
* :class:`ObsOptions` — the optional time-resolved observability layer
  (flight recorder ring, timeline sampling period).

Historically each runner grew its own copy of these as loose keyword
arguments (``batched=``, ``record=``, ``timeline_period_s=``, ...).  The
dataclasses are now the one public spelling; the legacy kwargs still work
through :func:`resolve_options` but emit a :class:`DeprecationWarning`.
Defaults are chosen so that resolving with nothing passed reproduces the
historical behaviour bit-for-bit (same fingerprints).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

#: Default flight-recorder ring capacity (mirrors ``repro.obs.recorder``;
#: duplicated here as a plain int so importing options stays dependency-free).
DEFAULT_RECORD_CAPACITY = 65536


class _Unset:
    """Sentinel for 'legacy kwarg not passed' (distinct from None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


UNSET = _Unset()


@dataclass(frozen=True)
class DriverOptions:
    """Replay-driver selection, shared by every runner and the serve loop.

    ``batched`` picks the chunked-arrival driver (the default; bit-identical
    to the scalar oracle, see tests/asicsim/test_differential.py);
    ``batch_size`` caps the arrivals fused per chunk.
    """

    batched: bool = True
    batch_size: int = 256

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass(frozen=True)
class ObsOptions:
    """Optional time-resolved observability, shared by every runner.

    ``record`` attaches a :class:`~repro.obs.FlightRecorder` (ring of
    ``record_capacity`` events, tagged ``record_source``);
    ``timeline_period_s`` arms a :class:`~repro.obs.TimelineSampler` on
    the run's registry.  ``record_source=None`` means "the runner's own
    default" ("chaos" for chaos runs, "fleet" for fleet runs, "serve" for
    the serving mode), so untouched defaults keep historical fingerprints.
    """

    record: bool = False
    record_capacity: int = DEFAULT_RECORD_CAPACITY
    record_source: Optional[str] = None
    timeline_period_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.record_capacity < 1:
            raise ValueError("record_capacity must be >= 1")
        if self.timeline_period_s is not None and self.timeline_period_s <= 0:
            raise ValueError("timeline_period_s must be positive")

    def resolved_source(self, default: str) -> str:
        """The recorder source tag, with the runner's default applied."""
        return self.record_source if self.record_source is not None else default


#: Which legacy kwarg maps onto which options field.
_DRIVER_FIELDS = ("batched", "batch_size")
_OBS_FIELDS = ("record", "record_capacity", "record_source", "timeline_period_s")


def resolve_options(
    driver: Optional[DriverOptions],
    obs: Optional[ObsOptions],
    legacy: Optional[Dict[str, object]] = None,
    stacklevel: int = 3,
) -> Tuple[DriverOptions, ObsOptions]:
    """Fold deprecated loose kwargs into ``(DriverOptions, ObsOptions)``.

    ``legacy`` maps legacy kwarg names to their passed values, with
    :data:`UNSET` marking "caller did not pass this".  Any actually-passed
    legacy kwarg emits one :class:`DeprecationWarning` and overrides the
    corresponding options field, so old call sites keep producing
    bit-identical results while they migrate.
    """
    resolved_driver = driver if driver is not None else DriverOptions()
    resolved_obs = obs if obs is not None else ObsOptions()
    if legacy:
        passed = {
            name: value
            for name, value in legacy.items()
            if not isinstance(value, _Unset)
        }
        if passed:
            warnings.warn(
                "legacy driver/observability kwargs "
                f"({', '.join(sorted(passed))}) are deprecated; pass "
                "driver=DriverOptions(...) / obs=ObsOptions(...) instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
            driver_over = {
                k: passed[k] for k in _DRIVER_FIELDS if k in passed
            }
            obs_over = {k: passed[k] for k in _OBS_FIELDS if k in passed}
            unknown = set(passed) - set(_DRIVER_FIELDS) - set(_OBS_FIELDS)
            if unknown:
                raise TypeError(
                    f"unknown legacy option kwargs: {sorted(unknown)}"
                )
            if driver_over:
                resolved_driver = replace(resolved_driver, **driver_over)
            if obs_over:
                resolved_obs = replace(resolved_obs, **obs_over)
    return resolved_driver, resolved_obs


__all__ = [
    "DEFAULT_RECORD_CAPACITY",
    "DriverOptions",
    "ObsOptions",
    "UNSET",
    "resolve_options",
]
