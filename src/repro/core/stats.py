"""Aggregated statistics helpers for SilkRoad experiments.

Convenience reducers over :class:`~repro.netsim.simulator.SimulationReport`
objects and switch counters, shared by the experiment modules and the
examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..netsim.flows import Connection
from ..netsim.simulator import SimulationReport


@dataclass(frozen=True)
class PccSummary:
    """PCC outcome of one run, in the units the paper's figures use."""

    system: str
    updates_per_min: float
    measured_connections: int
    violations: int
    horizon_s: float

    @property
    def violation_fraction(self) -> float:
        if self.measured_connections == 0:
            return 0.0
        return self.violations / self.measured_connections

    @property
    def violation_percent(self) -> float:
        return 100.0 * self.violation_fraction

    @property
    def violations_per_minute(self) -> float:
        if self.horizon_s <= 0:
            return 0.0
        return self.violations / (self.horizon_s / 60.0)


def summarize(
    report: SimulationReport, updates_per_min: float = 0.0
) -> PccSummary:
    """Condense a simulation report into the paper's PCC metric."""
    return PccSummary(
        system=report.name,
        updates_per_min=updates_per_min,
        measured_connections=report.measured_connections,
        violations=report.pcc_violations,
        horizon_s=report.horizon_s,
    )


def violations_by_minute(connections: Sequence[Connection]) -> Dict[int, int]:
    """Count PCC-violated connections per minute of their violation.

    The minute is that of the first decision change.
    """
    buckets: Dict[int, int] = {}
    for conn in connections:
        if not conn.pcc_violated:
            continue
        # The violation happens at the first decision differing from the
        # initial one.
        first_dip = None
        when = None
        for t, dip in conn.decisions:
            if dip is None:
                continue
            if first_dip is None:
                first_dip = dip
            elif dip != first_dip:
                when = t
                break
        if when is None:
            continue
        buckets[int(when // 60)] = buckets.get(int(when // 60), 0) + 1
    return buckets


def active_connection_peak(
    connections: Sequence[Connection], horizon_s: float, step_s: float = 60.0
) -> int:
    """Peak simultaneous connection count sampled every ``step_s``.

    Each connection contributes +1 at its first sample index and -1 past
    its last, so one sweep over a difference array replaces rescanning
    every connection at every sample — O(conns + samples) instead of
    O(conns x samples).
    """
    if step_s <= 0:
        raise ValueError("step must be positive")
    if horizon_s < 0:
        return 0
    num_steps = int(horizon_s / step_s + 1e-9) + 1  # samples at i*step_s
    delta = [0] * (num_steps + 1)
    for conn in connections:
        # Active at sample i iff start <= i*step_s < end; the epsilon in
        # ceil() keeps boundary samples (start exactly on the grid) in.
        i0 = max(0, math.ceil(conn.start / step_s - 1e-12))
        i1 = min(num_steps, math.ceil(conn.end / step_s - 1e-12))
        if i0 >= i1:
            continue
        delta[i0] += 1
        delta[i1] -= 1
    peak = 0
    active = 0
    for change in delta[:num_steps]:
        active += change
        peak = max(peak, active)
    return peak
