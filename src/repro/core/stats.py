"""Aggregated statistics helpers for SilkRoad experiments.

Convenience reducers over :class:`~repro.netsim.simulator.SimulationReport`
objects and switch counters, shared by the experiment modules and the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..netsim.flows import Connection
from ..netsim.simulator import SimulationReport


@dataclass(frozen=True)
class PccSummary:
    """PCC outcome of one run, in the units the paper's figures use."""

    system: str
    updates_per_min: float
    measured_connections: int
    violations: int
    horizon_s: float

    @property
    def violation_fraction(self) -> float:
        if self.measured_connections == 0:
            return 0.0
        return self.violations / self.measured_connections

    @property
    def violation_percent(self) -> float:
        return 100.0 * self.violation_fraction

    @property
    def violations_per_minute(self) -> float:
        if self.horizon_s <= 0:
            return 0.0
        return self.violations / (self.horizon_s / 60.0)


def summarize(
    report: SimulationReport, updates_per_min: float = 0.0
) -> PccSummary:
    """Condense a simulation report into the paper's PCC metric."""
    return PccSummary(
        system=report.name,
        updates_per_min=updates_per_min,
        measured_connections=report.measured_connections,
        violations=report.pcc_violations,
        horizon_s=report.horizon_s,
    )


def violations_by_minute(connections: Sequence[Connection]) -> Dict[int, int]:
    """Count PCC-violated connections per minute of their violation.

    The minute is that of the first decision change.
    """
    buckets: Dict[int, int] = {}
    for conn in connections:
        if not conn.pcc_violated:
            continue
        # The violation happens at the first decision differing from the
        # initial one.
        first_dip = None
        when = None
        for t, dip in conn.decisions:
            if dip is None:
                continue
            if first_dip is None:
                first_dip = dip
            elif dip != first_dip:
                when = t
                break
        if when is None:
            continue
        buckets[int(when // 60)] = buckets.get(int(when // 60), 0) + 1
    return buckets


def active_connection_peak(
    connections: Sequence[Connection], horizon_s: float, step_s: float = 60.0
) -> int:
    """Peak simultaneous connection count sampled every ``step_s``."""
    if step_s <= 0:
        raise ValueError("step must be positive")
    peak = 0
    t = 0.0
    while t <= horizon_s:
        active = sum(1 for c in connections if c.active_at(t))
        peak = max(peak, active)
        t += step_s
    return peak
