"""Whole-switch invariant verification.

Deep consistency checks across a :class:`~repro.core.silkroad.SilkRoadSwitch`'s
tables and bookkeeping — the kind of checker the paper's control-plane
software would run in debug builds.  Used by the test suite after
simulations, and callable by library users after driving a switch
directly.

Checked invariants:

1. ConnTable's internal cuckoo structures are self-consistent and no
   resident connection's data-plane lookup is shadowed.
2. Every installed (non-overflow) live connection is resident in ConnTable
   with its pinned version; every pending connection is absent.
3. DIPPoolTable refcounts equal the number of live connections pinned to
   each (VIP, version).
4. Every live connection's pinned version maps to an existing pool, and
   its recorded forwarding decision equals that pool's selection.
5. The pending index contains exactly the un-installed live connections.
6. No VIP is left mid-transition when its coordinator is idle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .pcc_update import Phase
from .silkroad import SilkRoadSwitch


class InvariantViolation(AssertionError):
    """Raised when a switch's internal state is inconsistent."""


def verify_switch(switch: SilkRoadSwitch) -> None:
    """Run every cross-table invariant; raises on the first failure."""
    switch.conn_table.check_invariants()
    _check_conn_residency(switch)
    _check_refcounts(switch)
    _check_decisions(switch)
    _check_pending_index(switch)
    _check_transitions(switch)


def _live_states(switch: SilkRoadSwitch):
    return {
        key: state
        for key, state in switch._states.items()
        if not state.dead
    }


def _check_conn_residency(switch: SilkRoadSwitch) -> None:
    overflowed = switch.table_full_events > 0
    for key, state in _live_states(switch).items():
        resident = key in switch.conn_table
        if state.installed and not resident and not overflowed:
            raise InvariantViolation(
                f"installed connection missing from ConnTable: {key!r}"
            )
        if resident:
            stored = switch.conn_table.get_exact(key)
            if stored != state.version:
                raise InvariantViolation(
                    f"ConnTable version {stored} != pinned {state.version}"
                )
        if not state.installed and resident:
            raise InvariantViolation(
                f"pending connection already resident: {key!r}"
            )


def _check_refcounts(switch: SilkRoadSwitch) -> None:
    expected: Dict[Tuple[object, int], int] = {}
    for state in switch._states.values():
        # Dead-but-installed connections hold their version until the
        # idle-timeout expiry removes the entry.
        if state.dead and not state.installed:
            continue
        expected[(state.vip, state.version)] = (
            expected.get((state.vip, state.version), 0) + 1
        )
    for vip in switch.vip_table.vips():
        for version in switch.dip_pools.live_versions(vip):
            actual = switch.dip_pools.refcount(vip, version)
            want = expected.get((vip, version), 0)
            if actual != want:
                raise InvariantViolation(
                    f"refcount mismatch for {vip} v{version}: "
                    f"table says {actual}, states say {want}"
                )


def _check_decisions(switch: SilkRoadSwitch) -> None:
    for key, state in _live_states(switch).items():
        if state.current_dip is None:
            raise InvariantViolation(f"live connection without a decision: {key!r}")
        if state.conn.broken_by_removal:
            # Version reuse may have substituted this connection's slot
            # (its DIP went down); its stale decision is expected.
            continue
        pool = switch.dip_pools.pool(state.vip, state.version)
        # Protected/pending conns may momentarily point at a different
        # version's choice; installed ones must match their pinned pool.
        if state.installed and not state.adopted_old_via_fp:
            expected = switch.dip_pools.select(state.vip, state.version, key)
            if state.current_dip != expected:
                raise InvariantViolation(
                    f"decision {state.current_dip} != pinned pool choice "
                    f"{expected} for {key!r}"
                )
        if state.current_dip not in pool and state.installed:
            raise InvariantViolation(
                f"decision {state.current_dip} not in pinned pool for {key!r}"
            )


def _check_pending_index(switch: SilkRoadSwitch) -> None:
    indexed = {
        key
        for keys in switch._pending_by_vip.values()
        for key in keys
    }
    live_pending = {
        key
        for key, state in _live_states(switch).items()
        if not state.installed
    }
    missing = live_pending - indexed
    if missing:
        raise InvariantViolation(f"pending connections missing from index: {len(missing)}")
    stale = {
        key
        for key in indexed
        if key not in switch._states or switch._states[key].dead
        or switch._states[key].installed
    }
    if stale:
        raise InvariantViolation(f"stale keys in pending index: {len(stale)}")


def _check_transitions(switch: SilkRoadSwitch) -> None:
    for vip in switch.vip_table.vips():
        entry = switch.vip_table.lookup(vip)
        phase = switch.coordinator.phase(vip)
        if entry.in_transition and phase is Phase.IDLE:
            raise InvariantViolation(f"{vip} stuck mid-transition")
        if phase is Phase.STEP2 and not entry.in_transition:
            raise InvariantViolation(f"{vip} in step 2 without dual versions")
