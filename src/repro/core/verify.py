"""Whole-switch invariant verification and runtime auditing.

Deep consistency checks across a :class:`~repro.core.silkroad.SilkRoadSwitch`'s
tables and bookkeeping — the kind of checker the paper's control-plane
software would run in debug builds.  Used by the test suite after
simulations (including chaos runs with fault injection), and callable by
library users after driving a switch directly.

Two entry points:

* :func:`audit_switch` runs every check, *collects* violations, and returns
  an :class:`AuditReport` — the right tool after a chaos run, where you
  want the full picture rather than the first failure.
* :func:`verify_switch` raises :class:`InvariantViolation` on the first
  collected violation (the original strict interface).

Checked invariants:

1. ConnTable's internal cuckoo structures are self-consistent and no
   resident connection's data-plane lookup is shadowed.
2. Every installed (non-overflow) live connection is resident in ConnTable
   with its pinned version; every pending connection is absent.
3. DIPPoolTable refcounts equal the number of live connections pinned to
   each (VIP, version) — no leaked references.
4. Every live connection's pinned version maps to an existing pool, and
   its recorded forwarding decision equals that pool's selection.
5. The pending index contains exactly the un-installed live connections
   (no orphaned ``_pending_by_vip`` keys).
6. The live-connections-per-VIP index (used by ``withdraw_vip``) contains
   exactly the live connections.
7. No VIP is left mid-transition when its coordinator is idle, and step 2
   always has dual versions (VIPTable/coordinator phase agreement).
8. With connections supplied: PCC violations occur *only* where the fault
   model predicts them — connections a watchdog reclassified at-risk, that
   overflowed a full ConnTable, or that adopted the old version through a
   TransitTable false positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..netsim.flows import Connection
from .pcc_update import Phase
from .silkroad import SilkRoadSwitch

Fail = Callable[[str], None]


class InvariantViolation(AssertionError):
    """Raised when a switch's internal state is inconsistent."""


@dataclass
class AuditReport:
    """Outcome of one :func:`audit_switch` pass."""

    violations: List[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise InvariantViolation(self.violations[0])

    def merge(self, other: "AuditReport", label: Optional[str] = None) -> "AuditReport":
        """Fold another audit into this one, in place; returns ``self``.

        The sharded replay engine audits every worker's switch
        independently and merges the reports in shard order, so the fleet
        view keeps each violation's text (prefixed with ``label``, e.g.
        ``shard-3``) and the total number of checks that ran.
        """
        prefix = f"[{label}] " if label else ""
        self.violations.extend(prefix + v for v in other.violations)
        self.checks_run += other.checks_run
        return self

    @classmethod
    def merged(cls, reports: Iterable["AuditReport"]) -> "AuditReport":
        """A fresh report holding the fold of ``reports`` in order."""
        out = cls()
        for report in reports:
            out.merge(report)
        return out

    def __str__(self) -> str:
        if self.ok:
            return f"audit ok ({self.checks_run} checks)"
        lines = "\n  ".join(self.violations)
        return f"audit FAILED ({len(self.violations)} violations):\n  {lines}"


def audit_switch(
    switch: SilkRoadSwitch,
    connections: Optional[Iterable[Connection]] = None,
) -> AuditReport:
    """Run every cross-table invariant, collecting all violations.

    ``connections``, when given (every connection the workload produced,
    live or finished), additionally checks that each PCC violation is
    attributable to the fault model's predicted exposure sets.
    """
    report = AuditReport()
    fail = report.violations.append
    checks = [
        lambda: _check_cuckoo(switch, fail),
        lambda: _check_conn_residency(switch, fail),
        lambda: _check_refcounts(switch, fail),
        lambda: _check_decisions(switch, fail),
        lambda: _check_pending_index(switch, fail),
        lambda: _check_live_index(switch, fail),
        lambda: _check_transitions(switch, fail),
    ]
    if connections is not None:
        checks.append(lambda: _check_pcc_attribution(switch, connections, fail))
    for check in checks:
        check()
        report.checks_run += 1
    return report


def verify_switch(switch: SilkRoadSwitch) -> None:
    """Run every cross-table invariant; raises on the first failure."""
    audit_switch(switch).raise_if_failed()


def _live_states(switch: SilkRoadSwitch):
    return {
        key: state
        for key, state in switch._states.items()
        if not state.dead
    }


def _check_cuckoo(switch: SilkRoadSwitch, fail: Fail) -> None:
    try:
        switch.conn_table.check_invariants()
    except AssertionError as exc:
        fail(f"ConnTable cuckoo invariants: {exc}")


def _check_conn_residency(switch: SilkRoadSwitch, fail: Fail) -> None:
    overflowed = switch.table_full_events > 0
    for key, state in _live_states(switch).items():
        resident = key in switch.conn_table
        if state.installed and not resident and not overflowed:
            fail(f"installed connection missing from ConnTable: {key!r}")
        if resident:
            stored = switch.conn_table.get_exact(key)
            if stored != state.version:
                fail(f"ConnTable version {stored} != pinned {state.version}")
        if not state.installed and resident:
            fail(f"pending connection already resident: {key!r}")


def _check_refcounts(switch: SilkRoadSwitch, fail: Fail) -> None:
    expected: Dict[Tuple[object, int], int] = {}
    for state in switch._states.values():
        # Dead-but-installed connections hold their version until the
        # idle-timeout expiry removes the entry.
        if state.dead and not state.installed:
            continue
        expected[(state.vip, state.version)] = (
            expected.get((state.vip, state.version), 0) + 1
        )
    for vip in switch.vip_table.vips():
        for version in switch.dip_pools.live_versions(vip):
            actual = switch.dip_pools.refcount(vip, version)
            want = expected.get((vip, version), 0)
            if actual != want:
                fail(
                    f"refcount mismatch for {vip} v{version}: "
                    f"table says {actual}, states say {want}"
                )


def _check_decisions(switch: SilkRoadSwitch, fail: Fail) -> None:
    for key, state in _live_states(switch).items():
        if state.current_dip is None:
            fail(f"live connection without a decision: {key!r}")
            continue
        if state.conn.broken_by_removal:
            # Version reuse may have substituted this connection's slot
            # (its DIP went down); its stale decision is expected.
            continue
        pool = switch.dip_pools.pool(state.vip, state.version)
        # Protected/pending conns may momentarily point at a different
        # version's choice; installed ones must match their pinned pool.
        if state.installed and not state.adopted_old_via_fp:
            expected = switch.dip_pools.select(state.vip, state.version, key)
            if state.current_dip != expected:
                fail(
                    f"decision {state.current_dip} != pinned pool choice "
                    f"{expected} for {key!r}"
                )
        if state.current_dip not in pool and state.installed:
            fail(f"decision {state.current_dip} not in pinned pool for {key!r}")


def _check_pending_index(switch: SilkRoadSwitch, fail: Fail) -> None:
    indexed = {
        key
        for keys in switch._pending_by_vip.values()
        for key in keys
    }
    live_pending = {
        key
        for key, state in _live_states(switch).items()
        if not state.installed
    }
    missing = live_pending - indexed
    if missing:
        fail(f"pending connections missing from index: {len(missing)}")
    stale = {
        key
        for key in indexed
        if key not in switch._states or switch._states[key].dead
        or switch._states[key].installed
    }
    if stale:
        fail(f"stale keys in pending index: {len(stale)}")


def _check_live_index(switch: SilkRoadSwitch, fail: Fail) -> None:
    indexed = {
        key
        for keys in switch._live_by_vip.values()
        for key in keys
    }
    live = set(_live_states(switch))
    missing = live - indexed
    if missing:
        fail(f"live connections missing from live-by-VIP index: {len(missing)}")
    stale = indexed - live
    if stale:
        fail(f"dead keys in live-by-VIP index: {len(stale)}")
    for vip, keys in switch._live_by_vip.items():
        wrong = {key for key in keys if switch._states[key].vip != vip}
        if wrong:
            fail(f"live-by-VIP index misfiles {len(wrong)} keys under {vip}")


def _check_transitions(switch: SilkRoadSwitch, fail: Fail) -> None:
    for vip in switch.vip_table.vips():
        entry = switch.vip_table.lookup(vip)
        phase = switch.coordinator.phase(vip)
        if entry.in_transition and phase is Phase.IDLE:
            fail(f"{vip} stuck mid-transition")
        if phase is Phase.STEP2 and not entry.in_transition:
            fail(f"{vip} in step 2 without dual versions")


def _check_pcc_attribution(
    switch: SilkRoadSwitch,
    connections: Iterable[Connection],
    fail: Fail,
) -> None:
    """Every PCC violation must be one the fault model predicted.

    The predicted exposure sets (persisted on the switch past connection
    death) are: watchdog at-risk reclassifications, ConnTable overflows
    left on the slow path, and step-2 TransitTable false-positive
    adoptions.  Without the TransitTable the whole mechanism is ablated
    and violations are expected everywhere, so the check is skipped.
    """
    if not switch.config.use_transit_table:
        return
    predicted = (
        switch.at_risk_keys | switch.overflow_keys | switch.fp_adopted_keys
    )
    unattributed = 0
    for conn in connections:
        if conn.pcc_violated and conn.key not in predicted:
            unattributed += 1
    if unattributed:
        fail(
            f"{unattributed} PCC violations not attributable to the fault "
            f"model (at-risk/overflow/Bloom-FP sets)"
        )
