"""DIPPoolTable: versioned, immutable DIP pools with version reuse (§4.2).

Compacting ConnTable's action data from an 18-byte DIP to a 6-bit *version*
introduces one level of indirection: DIPPoolTable maps ``(VIP, version)`` to
a DIP pool (like an ECMP group maps a group id to its members).  The rules:

* A pool, once created and referenced by live connections, **never changes**
  — that is what makes the per-version hash consistent.
* Versions come from a per-VIP **ring buffer**; a version is returned when
  the last connection using it expires.
* **Version reuse**: when an added DIP substitutes a previously removed one
  (the rolling-reboot pattern), the old version's pool is patched in place
  — the vacated slot gets the new DIP — and that version becomes current
  again, instead of burning a fresh version.  Connections pinned to the
  version that hashed to other slots are unaffected (slot positions are
  stable), which is why this is safe.  Figure 15 quantifies the benefit:
  6 version bits suffice where 9 would otherwise be needed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..asicsim.hashing import _MASK64, _splitmix64, HashUnit, base_hash
from ..asicsim.sram import bytes_for_entries
from ..netsim.packet import DirectIP, VirtualIP


class VersionsExhausted(RuntimeError):
    """All 2^version_bits versions of a VIP are live; see §4.2 footnote 4."""


@dataclass(frozen=True)
class DipPool:
    """An immutable, ordered DIP pool.

    ``select`` hashes a connection key over the pool slots; because a pool
    never mutates (except slot *substitution*, which preserves positions of
    all other slots), every packet of a connection selects the same slot.
    """

    slots: Tuple[DirectIP, ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("a DIP pool cannot be empty")

    def select(
        self, key: bytes, unit: HashUnit, key_hash: Optional[int] = None
    ) -> DirectIP:
        return self.slots[unit.index(key, len(self.slots), key_hash)]

    def without(self, dip: DirectIP) -> "DipPool":
        """A new pool with one DIP removed."""
        remaining = tuple(d for d in self.slots if d != dip)
        if len(remaining) == len(self.slots):
            raise KeyError(f"{dip} not in pool")
        return DipPool(remaining)

    def with_added(self, dip: DirectIP) -> "DipPool":
        """A new pool with one DIP appended."""
        if dip in self.slots:
            raise ValueError(f"{dip} already in pool")
        return DipPool(self.slots + (dip,))

    def substituted(self, slot_index: int, dip: DirectIP) -> "DipPool":
        """A pool with ``slots[slot_index]`` replaced by ``dip``."""
        if not 0 <= slot_index < len(self.slots):
            raise IndexError("slot index out of range")
        slots = list(self.slots)
        slots[slot_index] = dip
        return DipPool(tuple(slots))

    def __len__(self) -> int:
        return len(self.slots)

    def __contains__(self, dip: DirectIP) -> bool:
        return dip in self.slots


@dataclass
class _VipVersions:
    """Per-VIP version state."""

    free: deque  # ring buffer of available version numbers
    pools: Dict[int, DipPool] = field(default_factory=dict)
    refcounts: Dict[int, int] = field(default_factory=dict)
    current: Optional[int] = None
    #: (version, slot_index, removed_dip) records awaiting substitution.
    vacancies: List[Tuple[int, int, DirectIP]] = field(default_factory=list)
    versions_created: int = 0  # counts fresh allocations (reuse not counted)


class DipPoolTable:
    """The (VIP, version) -> DIP pool table plus the version allocator."""

    def __init__(
        self,
        version_bits: int = 6,
        version_reuse: bool = True,
        select_seed: int = 0xD1B0,
    ) -> None:
        if not 1 <= version_bits <= 16:
            raise ValueError("version_bits must be in [1, 16]")
        self.version_bits = version_bits
        self.num_versions = 1 << version_bits
        self.version_reuse = version_reuse
        self._select_unit = HashUnit(seed=select_seed)
        self._vips: Dict[VirtualIP, _VipVersions] = {}

    # ------------------------------------------------------------------
    # VIP lifecycle
    # ------------------------------------------------------------------

    def add_vip(self, vip: VirtualIP, dips: Sequence[DirectIP]) -> int:
        """Register a VIP with its initial pool; returns the first version."""
        if vip in self._vips:
            raise ValueError(f"VIP already registered: {vip}")
        state = _VipVersions(free=deque(range(self.num_versions)))
        self._vips[vip] = state
        return self._create_version(state, DipPool(tuple(dips)))

    def remove_vip(self, vip: VirtualIP) -> None:
        del self._vips[vip]

    def __contains__(self, vip: VirtualIP) -> bool:
        return vip in self._vips

    def vips(self) -> List[VirtualIP]:
        return list(self._vips)

    # ------------------------------------------------------------------
    # Version allocation
    # ------------------------------------------------------------------

    def _state(self, vip: VirtualIP) -> _VipVersions:
        state = self._vips.get(vip)
        if state is None:
            raise KeyError(f"unknown VIP: {vip}")
        return state

    def _create_version(self, state: _VipVersions, pool: DipPool) -> int:
        if not state.free:
            self._reclaim(state)
        if not state.free:
            raise VersionsExhausted(
                "no free version numbers; long-lived connections hold all "
                f"{self.num_versions} versions"
            )
        version = state.free.popleft()
        state.pools[version] = pool
        state.refcounts[version] = 0
        state.current = version
        state.versions_created += 1
        return version

    def _reclaim(self, state: _VipVersions) -> None:
        """Return versions with zero live connections to the ring buffer."""
        for version in list(state.pools):
            if version == state.current:
                continue
            if state.refcounts.get(version, 0) == 0:
                del state.pools[version]
                del state.refcounts[version]
                state.vacancies = [v for v in state.vacancies if v[0] != version]
                state.free.append(version)

    # ------------------------------------------------------------------
    # Pool updates (driven by the PCC update coordinator)
    # ------------------------------------------------------------------

    def remove_dip(self, vip: VirtualIP, dip: DirectIP) -> int:
        """Remove a DIP: creates (and returns) a new current version.

        The vacated slot of the *old* version is remembered so a future
        addition can substitute into it (version reuse).
        """
        state = self._state(vip)
        old_version = state.current
        assert old_version is not None
        old_pool = state.pools[old_version]
        slot_index = old_pool.slots.index(dip)
        new_pool = old_pool.without(dip)
        new_version = self._create_version(state, new_pool)
        if self.version_reuse:
            state.vacancies.append((old_version, slot_index, dip))
        return new_version

    def add_dip(self, vip: VirtualIP, dip: DirectIP) -> int:
        """Add a DIP: reuses an old version when substitution is possible,
        otherwise creates a fresh version.  Returns the new current version.
        """
        state = self._state(vip)
        current_pool = state.pools[state.current]
        if self.version_reuse:
            # Substitute into the most recent vacancy whose version is still
            # live *and* whose patched membership equals what the pool
            # should now contain (current members plus the new DIP) —
            # intervening updates can make older vacancies stale.
            target = set(current_pool.slots) | {dip}
            while state.vacancies:
                version, slot_index, _removed = state.vacancies.pop()
                pool = state.pools.get(version)
                if pool is None or version == state.current:
                    continue
                patched = pool.substituted(slot_index, dip)
                if set(patched.slots) != target:
                    continue
                state.pools[version] = patched
                state.current = version
                return version
        return self._create_version(state, current_pool.with_added(dip))

    def set_weight(self, vip: VirtualIP, dip: DirectIP, weight: int) -> int:
        """Give ``dip`` ``weight`` slot copies in a *new* current version.

        Weighted selection is plain slot replication: a DIP holding
        ``weight`` of the pool's slots receives that share of new
        connections.  The change always lands in a fresh version (never a
        patched one) because it alters the slot layout, not just one
        vacated position — connections pinned to older versions keep
        their mapping.  A no-op (the DIP already holds ``weight`` slots)
        returns the current version without allocating.
        """
        if weight < 1:
            raise ValueError("weight must be >= 1")
        state = self._state(vip)
        assert state.current is not None
        current_pool = state.pools[state.current]
        have = sum(1 for d in current_pool.slots if d == dip)
        if have == 0:
            raise KeyError(f"{dip} not in current pool of {vip}")
        if have == weight:
            return state.current
        slots = tuple(d for d in current_pool.slots if d != dip) + (dip,) * weight
        return self._create_version(state, DipPool(slots))

    # ------------------------------------------------------------------
    # Data-plane reads
    # ------------------------------------------------------------------

    def current_version(self, vip: VirtualIP) -> int:
        version = self._state(vip).current
        assert version is not None
        return version

    def pool(self, vip: VirtualIP, version: int) -> DipPool:
        pool = self._state(vip).pools.get(version)
        if pool is None:
            raise KeyError(f"no version {version} for {vip}")
        return pool

    def select(
        self,
        vip: VirtualIP,
        version: int,
        key: bytes,
        key_hash: Optional[int] = None,
    ) -> DirectIP:
        """Pick the DIP for a connection pinned to a pool version.

        ``key_hash`` is the connection's cached base hash; supplying it
        makes selection pure integer mixing.  The unit derivation and slot
        modulo are inlined (same arithmetic as
        ``pool.select(key, self._select_unit, key_hash)``): selection runs
        twice per connection on the hot path — at admission and again at
        install — and the flattened form drops four delegation calls each
        time.
        """
        state = self._vips.get(vip)
        if state is None:
            raise KeyError(f"unknown VIP: {vip}")
        pool = state.pools.get(version)
        if pool is None:
            raise KeyError(f"no version {version} for {vip}")
        if key_hash is None:
            key_hash = base_hash(key)
        slots = pool.slots
        return slots[
            _splitmix64((key_hash ^ self._select_unit.seed_mix) & _MASK64)
            % len(slots)
        ]

    # ------------------------------------------------------------------
    # Reference counting (connection lifecycle)
    # ------------------------------------------------------------------

    def acquire(self, vip: VirtualIP, version: int) -> None:
        """A connection started using this version."""
        state = self._state(vip)
        if version not in state.refcounts:
            raise KeyError(f"no version {version} for {vip}")
        state.refcounts[version] += 1

    def release(self, vip: VirtualIP, version: int) -> None:
        """A connection using this version expired."""
        state = self._state(vip)
        count = state.refcounts.get(version)
        if count is None or count <= 0:
            raise ValueError(f"refcount underflow for {vip} v{version}")
        state.refcounts[version] = count - 1
        if count - 1 == 0 and version != state.current:
            self._reclaim(state)

    # ------------------------------------------------------------------
    # Introspection / accounting
    # ------------------------------------------------------------------

    def live_versions(self, vip: VirtualIP) -> List[int]:
        return sorted(self._state(vip).pools)

    def versions_created(self, vip: VirtualIP) -> int:
        """Fresh version allocations for this VIP (reuse does not count)."""
        return self._state(vip).versions_created

    def refcount(self, vip: VirtualIP, version: int) -> int:
        return self._state(vip).refcounts.get(version, 0)

    def sram_bytes(self, dip_bytes: int = 18, overhead_bits: int = 6) -> int:
        """SRAM the table consumes: one member entry per (version, slot).

        ``dip_bytes`` is 18 for IPv6 (16 B address + 2 B port), 6 for IPv4.
        """
        member_entries = sum(
            len(pool)
            for state in self._vips.values()
            for pool in state.pools.values()
        )
        return bytes_for_entries(member_entries, dip_bytes * 8 + overhead_bits)
