"""SilkRoad core: the paper's primary contribution.

:class:`SilkRoadSwitch` is the public entry point — a stateful L4 load
balancer whose ConnTable, VIPTable, DIPPoolTable and TransitTable all live
in (modelled) switching-ASIC structures, with per-connection consistency
guaranteed across DIP-pool updates by the 3-step update protocol.
"""

from .config import SilkRoadConfig
from .conn_table import (
    ConnTable,
    EntryLayout,
    conn_table_bytes,
    digest_only_layout,
    digest_version_layout,
    memory_saving,
    naive_layout,
)
from .control_plane import SwitchCpu
from .dip_pool_table import DipPool, DipPoolTable, VersionsExhausted
from .health import HealthMonitor, always_alive
from .pcc_update import Phase, UpdateCoordinator, UpdateTimings
from .silkroad import SilkRoadSwitch
from .stats import PccSummary, active_connection_peak, summarize, violations_by_minute
from .transit_table import TransitTable
from .verify import AuditReport, InvariantViolation, audit_switch, verify_switch
from .vip_table import VipEntry, VipTable

__all__ = [
    "ConnTable",
    "DipPool",
    "HealthMonitor",
    "DipPoolTable",
    "EntryLayout",
    "PccSummary",
    "Phase",
    "SilkRoadConfig",
    "SilkRoadSwitch",
    "SwitchCpu",
    "TransitTable",
    "UpdateCoordinator",
    "UpdateTimings",
    "VersionsExhausted",
    "VipEntry",
    "VipTable",
    "AuditReport",
    "InvariantViolation",
    "audit_switch",
    "verify_switch",
    "active_connection_peak",
    "always_alive",
    "conn_table_bytes",
    "digest_only_layout",
    "digest_version_layout",
    "memory_saving",
    "naive_layout",
    "summarize",
    "violations_by_minute",
]
