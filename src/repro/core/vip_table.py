"""VIPTable: VIP -> current DIP-pool version (§4.2, Figure 7).

In SilkRoad the VIPTable no longer stores the DIP pool itself; it stores the
*version* new connections should use.  During step 2 of a 3-step PCC update
the table temporarily exposes **both** the old and new versions — packets
that miss ConnTable retrieve the pair and the TransitTable decides which one
applies (Figure 9c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..asicsim.sram import bytes_for_entries
from ..netsim.packet import VirtualIP


@dataclass
class VipEntry:
    """One VIPTable entry."""

    current_version: int
    #: Set only during step 2 of an update: the pre-update version that
    #: pending connections (marked in the TransitTable) must keep using.
    old_version: Optional[int] = None

    @property
    def in_transition(self) -> bool:
        return self.old_version is not None


class VipTable:
    """The VIP -> version match-action table."""

    def __init__(self) -> None:
        self._entries: Dict[VirtualIP, VipEntry] = {}

    def install(self, vip: VirtualIP, version: int) -> None:
        """Announce a VIP at this switch with its initial pool version."""
        if vip in self._entries:
            raise ValueError(f"VIP already installed: {vip}")
        self._entries[vip] = VipEntry(current_version=version)

    def withdraw(self, vip: VirtualIP) -> None:
        del self._entries[vip]

    def __contains__(self, vip: VirtualIP) -> bool:
        return vip in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def vips(self) -> List[VirtualIP]:
        return list(self._entries)

    def lookup(self, vip: VirtualIP) -> VipEntry:
        entry = self._entries.get(vip)
        if entry is None:
            raise KeyError(f"VIP not announced: {vip}")
        return entry

    # ------------------------------------------------------------------
    # Update transitions (called by the PCC update coordinator)
    # ------------------------------------------------------------------

    def begin_transition(self, vip: VirtualIP, new_version: int) -> None:
        """Step 2 entry: expose (old, new); new connections use ``new``."""
        entry = self.lookup(vip)
        if entry.in_transition:
            raise RuntimeError(f"{vip} already in transition")
        entry.old_version = entry.current_version
        entry.current_version = new_version

    def end_transition(self, vip: VirtualIP) -> None:
        """Step 3: drop the old version; the update is finished."""
        entry = self.lookup(vip)
        if not entry.in_transition:
            raise RuntimeError(f"{vip} not in transition")
        entry.old_version = None

    def set_version(self, vip: VirtualIP, version: int) -> None:
        """Atomic version switch (used when no transition is needed, and by
        the no-TransitTable ablation which switches immediately)."""
        entry = self.lookup(vip)
        entry.current_version = version

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def sram_bytes(self, ipv6: bool = False) -> int:
        """SRAM for the table: key is (dst IP, dst port, proto), action is
        two version numbers plus packing overhead."""
        key_bits = (128 if ipv6 else 32) + 16 + 8
        action_bits = 2 * 6 + 6
        return bytes_for_entries(len(self._entries), key_bits + action_bits)
