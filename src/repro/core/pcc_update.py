"""The 3-step per-connection-consistent update coordinator (§4.3, Figure 9).

A DIP-pool update cannot simply rewrite VIPTable: connections that arrived
but are not yet installed in ConnTable (*pending connections*) would have
their first packets matched against the old pool and their later packets
against the new one.  The coordinator serializes updates per VIP and walks
each through three steps:

* **Step 1** — from the request (``t_req``): every new connection of the
  VIP is marked in the TransitTable; wait until every connection that
  arrived *before* ``t_req`` is installed in ConnTable.
* **Step 2** — execute (``t_exec``): the DIP pool change is applied and
  VIPTable exposes (old, new) versions; ConnTable misses consult the
  TransitTable — hit means old version, miss means new.  Wait until every
  *marked* connection is installed.
* **Step 3** — finish (``t_finish``): drop the old version from VIPTable
  and clear the TransitTable.

Updates requested while one is in flight queue and run back-to-back.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from ..netsim.packet import VirtualIP
from ..netsim.updates import UpdateEvent
from ..obs.metrics import LATENCY_BUCKETS_S, Scope
from ..obs.tracing import TraceSpan, Tracer


class Phase(enum.Enum):
    IDLE = "idle"
    STEP1 = "step1"  # t_req reached, waiting for pre-request pending conns
    STEP2 = "step2"  # executed, waiting for marked conns


@dataclass
class _VipUpdate:
    phase: Phase = Phase.IDLE
    active: Optional[UpdateEvent] = None
    #: queued (event, on_finished) pairs behind the active update.
    queued: Deque = field(default_factory=deque)
    #: completion callback for the active update (fired at t_finish).
    on_finished: Optional[Callable] = None
    awaiting_exec: Set[bytes] = field(default_factory=set)
    marked: Set[bytes] = field(default_factory=set)
    t_req: float = 0.0
    t_exec: float = 0.0
    span: Optional[TraceSpan] = None
    #: Armed per-step watchdog (an :class:`~repro.netsim.events.EventHandle`
    #: or anything with ``cancel()``); ``None`` while no step deadline runs.
    watchdog: Optional[object] = None


@dataclass
class UpdateTimings:
    """Observed step timings, for analysis of update latency."""

    vip: VirtualIP
    t_req: float
    t_exec: float
    t_finish: float

    @property
    def step1_s(self) -> float:
        return self.t_exec - self.t_req

    @property
    def step2_s(self) -> float:
        return self.t_finish - self.t_exec


class UpdateCoordinator:
    """Drives 3-step updates for all VIPs of one switch.

    The coordinator owns no tables; it calls back into the switch:

    * ``pending_keys(vip)`` — keys of that VIP currently pending,
    * ``execute(event)`` — apply the pool change + VIPTable transition
      (called at ``t_exec``),
    * ``finish(vip)`` — drop the old version / clear filter bookkeeping
      (called at ``t_finish``),
    * ``mark(key)`` — write the key into the TransitTable,
    * ``now()`` — simulation clock.

    When a :class:`~repro.obs.tracing.Tracer` is attached, every update
    produces one ``pcc_update`` span with ``t_req`` / ``t_exec`` /
    ``t_finish`` marks (the Figure 11 timeline) carrying the pending and
    marked connection counts at each transition; a metrics scope adds the
    step-duration histograms.

    **Watchdogs.**  With ``step_deadline_s`` set (and a ``schedule``
    callback to arm timers), each step gets a deadline: a step-1 or step-2
    wait that overruns *force-advances* instead of stalling every queued
    update behind a connection that will never install (crashed CPU, lost
    notification, shed job).  The still-pending keys are handed to
    ``on_at_risk`` — the switch reclassifies them as at-risk, since their
    protection window closed early and their eventual install may move
    them across versions.  Forced steps are counted and marked on the
    update's trace span.
    """

    def __init__(
        self,
        pending_keys: Callable[[VirtualIP], Set[bytes]],
        execute: Callable[[UpdateEvent], None],
        finish: Callable[[VirtualIP], None],
        mark: Callable[[bytes], None],
        now: Callable[[], float],
        start: Optional[Callable[[VirtualIP], None]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Scope] = None,
        step_deadline_s: Optional[float] = None,
        schedule: Optional[Callable[[float, Callable[[], None]], object]] = None,
        on_at_risk: Optional[Callable[[VirtualIP, Set[bytes], Phase], None]] = None,
    ) -> None:
        if step_deadline_s is not None and step_deadline_s <= 0:
            raise ValueError("step_deadline_s must be positive or None")
        if step_deadline_s is not None and schedule is None:
            raise ValueError("step_deadline_s requires a schedule callback")
        self._pending_keys = pending_keys
        self._execute = execute
        self._finish = finish
        self._mark = mark
        self._now = now
        self._start = start or (lambda vip: None)
        self._tracer = tracer
        self.step_deadline_s = step_deadline_s
        self._schedule = schedule
        self._on_at_risk = on_at_risk
        self._vips: Dict[VirtualIP, _VipUpdate] = {}
        self.timings: List[UpdateTimings] = []
        self.updates_requested = 0
        self.updates_completed = 0
        self.watchdog_forced_steps = 0
        self.at_risk_reclassified = 0
        if metrics is None:
            self._m_requested = self._m_completed = self._m_queued = None
            self._m_step1 = self._m_step2 = self._m_total = None
            self._m_watchdog = self._m_at_risk = None
        else:
            self._m_requested = metrics.counter(
                "updates_requested_total", "DIP-pool updates requested"
            )
            self._m_completed = metrics.counter(
                "updates_completed_total", "updates that reached t_finish"
            )
            self._m_queued = metrics.counter(
                "updates_queued_total", "requests queued behind an in-flight update"
            )
            self._m_step1 = metrics.histogram(
                "step1_duration_s",
                buckets=LATENCY_BUCKETS_S,
                quantiles=(0.5, 0.99),
                help="t_exec - t_req: wait for pre-request pending connections",
            )
            self._m_step2 = metrics.histogram(
                "step2_duration_s",
                buckets=LATENCY_BUCKETS_S,
                quantiles=(0.5, 0.99),
                help="t_finish - t_exec: wait for marked connections",
            )
            self._m_total = metrics.histogram(
                "update_duration_s",
                buckets=LATENCY_BUCKETS_S,
                quantiles=(0.5, 0.99),
                help="t_finish - t_req: whole 3-step update",
            )
            self._m_watchdog = metrics.counter(
                "watchdog_forced_steps_total",
                "update steps force-advanced past their deadline",
            )
            self._m_at_risk = metrics.counter(
                "at_risk_keys_total",
                "pending keys reclassified at-risk by a forced step",
            )

    def _state(self, vip: VirtualIP) -> _VipUpdate:
        return self._vips.setdefault(vip, _VipUpdate())

    def phase(self, vip: VirtualIP) -> Phase:
        state = self._vips.get(vip)
        return state.phase if state is not None else Phase.IDLE

    def queue_depth(self, vip: VirtualIP) -> int:
        state = self._vips.get(vip)
        return len(state.queued) if state is not None else 0

    # ------------------------------------------------------------------
    # Operator-facing
    # ------------------------------------------------------------------

    def request(
        self,
        event: UpdateEvent,
        on_finished: Optional[Callable[[VirtualIP, UpdateTimings], None]] = None,
    ) -> None:
        """An operator requests a DIP-pool update (t_req if idle).

        ``on_finished``, when given, is called as ``on_finished(vip,
        timings)`` once *this* update reaches ``t_finish`` — after the
        switch's own finish hook ran, before the next queued update
        begins.  The serving mode's admin-initiated drains use it to
        track completion precisely instead of polling the phase.
        """
        self.updates_requested += 1
        if self._m_requested is not None:
            self._m_requested.value += 1.0
        state = self._state(event.vip)
        if state.phase is not Phase.IDLE:
            state.queued.append((event, on_finished))
            if self._m_queued is not None:
                self._m_queued.value += 1.0
            return
        self._begin(state, event, on_finished)

    def _begin(
        self,
        state: _VipUpdate,
        event: UpdateEvent,
        on_finished: Optional[Callable] = None,
    ) -> None:
        state.phase = Phase.STEP1
        state.active = event
        state.on_finished = on_finished
        state.t_req = self._now()
        state.awaiting_exec = set(self._pending_keys(event.vip))
        state.marked = set()
        if self._tracer is not None:
            state.span = self._tracer.start_span(
                "pcc_update",
                t=state.t_req,
                vip=str(event.vip),
                kind=event.kind.value,
                dip=str(event.dip),
            )
            state.span.mark(
                "t_req", state.t_req, pending_connections=len(state.awaiting_exec)
            )
        self._start(event.vip)
        self._arm_watchdog(event.vip, state)
        self._maybe_exec(event.vip, state)

    # ------------------------------------------------------------------
    # Watchdogs
    # ------------------------------------------------------------------

    def _arm_watchdog(self, vip: VirtualIP, state: _VipUpdate) -> None:
        """(Re)arm the per-step deadline for the step just entered."""
        self._cancel_watchdog(state)
        if self.step_deadline_s is None:
            return
        phase = state.phase

        def fire() -> None:
            state.watchdog = None
            self._watchdog_expired(vip, state, phase)

        state.watchdog = self._schedule(self.step_deadline_s, fire)

    def _cancel_watchdog(self, state: _VipUpdate) -> None:
        if state.watchdog is not None:
            state.watchdog.cancel()
            state.watchdog = None

    def _watchdog_expired(self, vip: VirtualIP, state: _VipUpdate, phase: Phase) -> None:
        if state.phase is not phase:
            # The step completed between scheduling and firing; stale timer.
            return
        if phase is Phase.STEP1:
            stuck = set(state.awaiting_exec)
            state.awaiting_exec.clear()
        else:
            stuck = set(state.marked)
            state.marked.clear()
        self.watchdog_forced_steps += 1
        self.at_risk_reclassified += len(stuck)
        if self._m_watchdog is not None:
            self._m_watchdog.value += 1.0
            self._m_at_risk.value += float(len(stuck))
        if state.span is not None:
            state.span.mark(
                f"watchdog_{phase.value}", self._now(), at_risk=len(stuck)
            )
        if self._on_at_risk is not None and stuck:
            self._on_at_risk(vip, stuck, phase)
        if phase is Phase.STEP1:
            self._maybe_exec(vip, state)
        else:
            self._maybe_finish(vip, state)

    # ------------------------------------------------------------------
    # Data-plane/CPU notifications from the switch
    # ------------------------------------------------------------------

    def note_new_pending(self, vip: VirtualIP, key: bytes) -> bool:
        """A new connection of ``vip`` became pending.

        In step 1 it is marked in the TransitTable (returns True); in any
        other phase the TransitTable is not written.
        """
        state = self._vips.get(vip)
        if state is None or state.phase is not Phase.STEP1:
            return False
        self._mark(key)
        state.marked.add(key)
        return True

    def on_installed(self, vip: VirtualIP, key: bytes) -> None:
        """The CPU finished installing ``key`` into ConnTable."""
        state = self._vips.get(vip)
        if state is None or state.phase is Phase.IDLE:
            return
        if state.phase is Phase.STEP1:
            state.awaiting_exec.discard(key)
            self._maybe_exec(vip, state)
        elif state.phase is Phase.STEP2:
            state.marked.discard(key)
            self._maybe_finish(vip, state)

    def on_pending_aborted(self, vip: VirtualIP, key: bytes) -> None:
        """A pending connection died before being installed."""
        state = self._vips.get(vip)
        if state is None or state.phase is Phase.IDLE:
            return
        if state.phase is Phase.STEP1:
            state.awaiting_exec.discard(key)
            state.marked.discard(key)
            self._maybe_exec(vip, state)
        elif state.phase is Phase.STEP2:
            state.marked.discard(key)
            self._maybe_finish(vip, state)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def _maybe_exec(self, vip: VirtualIP, state: _VipUpdate) -> None:
        if state.phase is not Phase.STEP1 or state.awaiting_exec:
            return
        state.phase = Phase.STEP2
        state.t_exec = self._now()
        if state.span is not None:
            state.span.mark(
                "t_exec", state.t_exec, marked_connections=len(state.marked)
            )
        if state.marked:
            self._arm_watchdog(vip, state)
        else:
            self._cancel_watchdog(state)
        assert state.active is not None
        self._execute(state.active)
        self._maybe_finish(vip, state)

    def _maybe_finish(self, vip: VirtualIP, state: _VipUpdate) -> None:
        if state.phase is not Phase.STEP2 or state.marked:
            return
        self._cancel_watchdog(state)
        t_finish = self._now()
        timing = UpdateTimings(
            vip=vip, t_req=state.t_req, t_exec=state.t_exec, t_finish=t_finish
        )
        self.timings.append(timing)
        self.updates_completed += 1
        if self._m_completed is not None:
            self._m_completed.value += 1.0
            self._m_step1.observe(timing.step1_s)
            self._m_step2.observe(timing.step2_s)
            self._m_total.observe(t_finish - state.t_req)
        if state.span is not None:
            span = state.span
            state.span = None
            span.mark("t_finish", t_finish)
            span.attrs["step1_s"] = timing.step1_s
            span.attrs["step2_s"] = timing.step2_s
            span.finish(t_finish)
        state.phase = Phase.IDLE
        state.active = None
        callback = state.on_finished
        state.on_finished = None
        self._finish(vip)
        if callback is not None:
            callback(vip, timing)
        if state.queued:
            next_event, next_callback = state.queued.popleft()
            self._begin(state, next_event, next_callback)
