"""TransitTable: the pending-connection Bloom filter (§4.3).

During a 3-step PCC update the TransitTable remembers which connections must
keep using the *old* DIP-pool version.  Its lifecycle per update:

* **Step 1 (write-only)** between t_req and t_exec: every new connection of
  a VIP under update is inserted.
* **Step 2 (read-only)** between t_exec and t_finish: packets that miss
  ConnTable query the filter — hit means old version, miss means new.
* **Step 3**: cleared.

Several VIPs may be mid-update simultaneously; they share the physical
filter (it is one register array).  A naive reference count that only wipes
the array when the *last* in-flight update finishes lets the marks of an
update that already reached step 3 linger, inflating step-2 false positives
for unrelated VIPs for as long as any other update is in flight.  This
wrapper therefore **per-update-accounts** the marks: :meth:`update_started`
hands out an update id, :meth:`mark` stamps each mark with its owning
update, and when an update finishes its marks are evicted — the control
plane wipes the array and replays the marks still owned by in-flight
updates (it logged them during step 1, so the rebuild is exact and can
never produce a false negative).  Marks recorded without an id keep the
legacy behaviour of surviving until the last active update finishes.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..asicsim.registers import BloomFilter, BloomQuery
from ..obs.metrics import Scope


class TransitTable:
    """The shared pending-connection filter of one switch."""

    def __init__(
        self,
        size_bytes: int = 256,
        num_hashes: int = 4,
        seed: int = 0xB100F,
        metrics: Optional[Scope] = None,
    ):
        self._filter = BloomFilter(size_bytes, num_hashes=num_hashes, seed=seed)
        self._next_update_id = 1
        #: update id -> {key: cached base hash} of the marks it owns.
        self._owned: Dict[int, Dict[bytes, Optional[int]]] = {}
        #: marks recorded without an owning update (legacy callers).
        self._unowned: Dict[bytes, Optional[int]] = {}
        self.clears = 0
        self.rebuilds = 0
        self.evicted_marks = 0
        if metrics is None:
            self._m_marks = self._m_checks = self._m_hits = None
            self._m_fp = self._m_clears = None
            self._m_rebuilds = self._m_evicted = None
        else:
            self._m_marks = metrics.counter(
                "marks_total", "pending connections written during step 1"
            )
            self._m_checks = metrics.counter(
                "checks_total", "ConnTable-miss packets that consulted the filter"
            )
            self._m_hits = metrics.counter(
                "hits_total", "filter queries answered positive"
            )
            self._m_fp = metrics.counter(
                "false_positives_total", "positive answers for never-marked keys"
            )
            self._m_clears = metrics.counter(
                "clears_total", "filter wipes at step 3 (no update left in flight)"
            )
            self._m_rebuilds = metrics.counter(
                "rebuilds_total",
                "filter rebuilds evicting a finished update's marks while "
                "other updates stayed in flight",
            )
            self._m_evicted = metrics.counter(
                "evicted_marks_total",
                "marks of finished updates removed before the last clear",
            )
            metrics.gauge("population", "keys marked since the last clear").set_function(
                lambda: float(self._filter.population)
            )
            metrics.gauge("fill_ratio", "fraction of set bits").set_function(
                lambda: self._filter.fill_ratio
            )
            metrics.gauge("active_updates", "updates currently using the filter").set_function(
                lambda: float(len(self._owned))
            )

    # -- update lifecycle ------------------------------------------------

    def update_started(self) -> int:
        """An update entered step 1; returns its id for mark stamping."""
        update_id = self._next_update_id
        self._next_update_id += 1
        self._owned[update_id] = {}
        return update_id

    def update_finished(self, update_id: Optional[int] = None) -> None:
        """An update reached step 3: evict its marks.

        With no update left in flight the filter is wiped outright; while
        others remain, the array is wiped and the surviving marks (those of
        still-active updates, plus unowned legacy marks) are replayed so
        stale bits stop inflating other VIPs' false positives.

        ``update_id`` is the token :meth:`update_started` returned; omitting
        it (legacy callers) finishes the oldest in-flight update.
        """
        if not self._owned:
            raise RuntimeError("update_finished without matching update_started")
        if update_id is None:
            update_id = next(iter(self._owned))
        finished = self._owned.pop(update_id)
        if not self._owned:
            # Last in-flight update: step 3 proper, the filter truly clears.
            self._unowned.clear()
            self._filter.clear()
            self.clears += 1
            if self._m_clears is not None:
                self._m_clears.value += 1.0
            return
        # Other updates still need their marks: rebuild without the
        # finished update's.  A key marked by several updates survives
        # until its last owner finishes.
        survivors: Dict[bytes, Optional[int]] = dict(self._unowned)
        for marks in self._owned.values():
            survivors.update(marks)
        evicted = sum(1 for key in finished if key not in survivors)
        self._filter.clear()
        for key, key_hash in survivors.items():
            self._filter.insert(key, key_hash)
        self.rebuilds += 1
        self.evicted_marks += evicted
        if self._m_rebuilds is not None:
            self._m_rebuilds.value += 1.0
            self._m_evicted.value += float(evicted)

    @property
    def active_updates(self) -> int:
        return len(self._owned)

    # -- data plane --------------------------------------------------------

    def mark(
        self,
        key: bytes,
        key_hash: Optional[int] = None,
        update_id: Optional[int] = None,
    ) -> None:
        """Step 1: remember a pending connection (one-cycle transactional
        write in hardware).

        ``key_hash`` is the connection's cached base hash (skips the byte
        pass); ``update_id`` stamps the mark with its owning update so it
        can be evicted the moment that update finishes.
        """
        self._filter.insert(key, key_hash)
        if update_id is not None and update_id in self._owned:
            self._owned[update_id][key] = key_hash
        else:
            self._unowned[key] = key_hash
        if self._m_marks is not None:
            self._m_marks.value += 1.0

    def check(self, key: bytes, key_hash: Optional[int] = None) -> BloomQuery:
        """Step 2: should this ConnTable-missing packet use the old version?"""
        query = self._filter.query(key, key_hash)
        if self._m_checks is not None:
            self._m_checks.value += 1.0
            if query.positive:
                self._m_hits.value += 1.0
                if query.false_positive:
                    self._m_fp.value += 1.0
        return query

    def check_batch(
        self, keys: list, key_hashes: list
    ) -> list:
        """Step-2 checks for a whole batch of ConnTable-missing packets.

        Element ``i`` equals ``check(keys[i], key_hashes[i])`` exactly.
        The filter is read-only here, so batching queries is always safe;
        interleaved ``mark`` calls (a step-1 update in the same window)
        are the caller's responsibility to order — see the intra-batch
        ordering rule in docs/architecture.md.
        """
        queries = self._filter.query_batch(keys, key_hashes)
        if self._m_checks is not None:
            self._m_checks.value += float(len(keys))
            for query in queries:
                if query.positive:
                    self._m_hits.value += 1.0
                    if query.false_positive:
                        self._m_fp.value += 1.0
        return queries

    # -- accounting --------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self._filter.size_bytes

    @property
    def false_positives(self) -> int:
        return self._filter.false_positives

    @property
    def population(self) -> int:
        return self._filter.population

    @property
    def fill_ratio(self) -> float:
        return self._filter.fill_ratio

    def expected_false_positive_rate(self, population: Optional[int] = None) -> float:
        return self._filter.expected_false_positive_rate(population)
