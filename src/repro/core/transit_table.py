"""TransitTable: the pending-connection Bloom filter (§4.3).

During a 3-step PCC update the TransitTable remembers which connections must
keep using the *old* DIP-pool version.  Its lifecycle per update:

* **Step 1 (write-only)** between t_req and t_exec: every new connection of
  a VIP under update is inserted.
* **Step 2 (read-only)** between t_exec and t_finish: packets that miss
  ConnTable query the filter — hit means old version, miss means new.
* **Step 3**: cleared.

Several VIPs may be mid-update simultaneously; they share the physical
filter (it is one register array), so this wrapper reference-counts the
in-flight updates and only truly clears when the last one finishes — an
implementation detail the paper leaves to the control plane.
"""

from __future__ import annotations

from typing import Optional

from ..asicsim.registers import BloomFilter, BloomQuery


class TransitTable:
    """The shared pending-connection filter of one switch."""

    def __init__(self, size_bytes: int = 256, num_hashes: int = 4, seed: int = 0xB100F):
        self._filter = BloomFilter(size_bytes, num_hashes=num_hashes, seed=seed)
        self._active_updates = 0
        self.clears = 0

    # -- update lifecycle ------------------------------------------------

    def update_started(self) -> None:
        """An update entered step 1; the filter is in use."""
        self._active_updates += 1

    def update_finished(self) -> None:
        """An update reached step 3; clear once no update needs the filter."""
        if self._active_updates <= 0:
            raise RuntimeError("update_finished without matching update_started")
        self._active_updates -= 1
        if self._active_updates == 0:
            self._filter.clear()
            self.clears += 1

    @property
    def active_updates(self) -> int:
        return self._active_updates

    # -- data plane --------------------------------------------------------

    def mark(self, key: bytes) -> None:
        """Step 1: remember a pending connection (one-cycle transactional
        write in hardware)."""
        self._filter.insert(key)

    def check(self, key: bytes) -> BloomQuery:
        """Step 2: should this ConnTable-missing packet use the old version?"""
        return self._filter.query(key)

    # -- accounting --------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self._filter.size_bytes

    @property
    def false_positives(self) -> int:
        return self._filter.false_positives

    @property
    def population(self) -> int:
        return self._filter.population

    @property
    def fill_ratio(self) -> float:
        return self._filter.fill_ratio

    def expected_false_positive_rate(self, population: Optional[int] = None) -> float:
        return self._filter.expected_false_positive_rate(population)
