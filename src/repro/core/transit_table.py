"""TransitTable: the pending-connection Bloom filter (§4.3).

During a 3-step PCC update the TransitTable remembers which connections must
keep using the *old* DIP-pool version.  Its lifecycle per update:

* **Step 1 (write-only)** between t_req and t_exec: every new connection of
  a VIP under update is inserted.
* **Step 2 (read-only)** between t_exec and t_finish: packets that miss
  ConnTable query the filter — hit means old version, miss means new.
* **Step 3**: cleared.

Several VIPs may be mid-update simultaneously; they share the physical
filter (it is one register array), so this wrapper reference-counts the
in-flight updates and only truly clears when the last one finishes — an
implementation detail the paper leaves to the control plane.
"""

from __future__ import annotations

from typing import Optional

from ..asicsim.registers import BloomFilter, BloomQuery
from ..obs.metrics import Scope


class TransitTable:
    """The shared pending-connection filter of one switch."""

    def __init__(
        self,
        size_bytes: int = 256,
        num_hashes: int = 4,
        seed: int = 0xB100F,
        metrics: Optional[Scope] = None,
    ):
        self._filter = BloomFilter(size_bytes, num_hashes=num_hashes, seed=seed)
        self._active_updates = 0
        self.clears = 0
        if metrics is None:
            self._m_marks = self._m_checks = self._m_hits = None
            self._m_fp = self._m_clears = None
        else:
            self._m_marks = metrics.counter(
                "marks_total", "pending connections written during step 1"
            )
            self._m_checks = metrics.counter(
                "checks_total", "ConnTable-miss packets that consulted the filter"
            )
            self._m_hits = metrics.counter(
                "hits_total", "filter queries answered positive"
            )
            self._m_fp = metrics.counter(
                "false_positives_total", "positive answers for never-marked keys"
            )
            self._m_clears = metrics.counter(
                "clears_total", "filter wipes at step 3"
            )
            metrics.gauge("population", "keys marked since the last clear").set_function(
                lambda: float(self._filter.population)
            )
            metrics.gauge("fill_ratio", "fraction of set bits").set_function(
                lambda: self._filter.fill_ratio
            )
            metrics.gauge("active_updates", "updates currently using the filter").set_function(
                lambda: float(self._active_updates)
            )

    # -- update lifecycle ------------------------------------------------

    def update_started(self) -> None:
        """An update entered step 1; the filter is in use."""
        self._active_updates += 1

    def update_finished(self) -> None:
        """An update reached step 3; clear once no update needs the filter."""
        if self._active_updates <= 0:
            raise RuntimeError("update_finished without matching update_started")
        self._active_updates -= 1
        if self._active_updates == 0:
            self._filter.clear()
            self.clears += 1
            if self._m_clears is not None:
                self._m_clears.value += 1.0

    @property
    def active_updates(self) -> int:
        return self._active_updates

    # -- data plane --------------------------------------------------------

    def mark(self, key: bytes) -> None:
        """Step 1: remember a pending connection (one-cycle transactional
        write in hardware)."""
        self._filter.insert(key)
        if self._m_marks is not None:
            self._m_marks.value += 1.0

    def check(self, key: bytes) -> BloomQuery:
        """Step 2: should this ConnTable-missing packet use the old version?"""
        query = self._filter.query(key)
        if self._m_checks is not None:
            self._m_checks.value += 1.0
            if query.positive:
                self._m_hits.value += 1.0
                if query.false_positive:
                    self._m_fp.value += 1.0
        return query

    # -- accounting --------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self._filter.size_bytes

    @property
    def false_positives(self) -> int:
        return self._filter.false_positives

    @property
    def population(self) -> int:
        return self._filter.population

    @property
    def fill_ratio(self) -> float:
        return self._filter.fill_ratio

    def expected_false_positive_rate(self, population: Optional[int] = None) -> float:
        return self._filter.expected_false_positive_rate(population)
