"""SilkRoad switch configuration.

Defaults follow the paper's evaluation setup (§5, §6): 16-bit digests,
6-bit DIP-pool versions, four ConnTable entries per 112-bit SRAM word, a
256-byte TransitTable, a 2 K-event learning filter with a 1 ms timeout, and
a switch CPU inserting 200 K ConnTable entries per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..asicsim.sram import DEFAULT_WORD_BITS


@dataclass(frozen=True)
class SilkRoadConfig:
    """All knobs of a SilkRoad switch instance."""

    # --- ConnTable geometry (§4.2).
    conn_table_capacity: int = 1_000_000
    conn_table_target_load: float = 0.9375  # 15/16: cuckoo packs tightly
    conn_table_stages: int = 4
    conn_table_ways: int = 4
    digest_bits: int = 16
    version_bits: int = 6
    overhead_bits: int = 6
    word_bits: int = DEFAULT_WORD_BITS

    # --- TransitTable (§4.3).
    use_transit_table: bool = True
    transit_table_bytes: int = 256
    transit_hash_ways: int = 4
    #: Redirect TCP SYNs that falsely hit the TransitTable in step 2 to the
    #: switch CPU for correction.  The paper describes this mitigation but
    #: its own Figure 18 still measures violations for tiny filters, so the
    #: reproduction defaults to off; turning it on gives zero violations at
    #: any filter size.
    syn_redirect_on_transit_fp: bool = False

    # --- Connection learning (§4.1, §4.3).
    learning_filter_capacity: int = 2048
    learning_filter_timeout_s: float = 1e-3
    insertion_rate_per_s: float = 200_000.0
    #: Software handling time for a redirected (false-positive) TCP SYN.
    fp_resolution_delay_s: float = 2e-3

    # --- Slow-path hardening (failure model; see docs/robustness.md).
    #: Maximum insertion jobs the switch CPU may hold queued or in flight.
    #: ``None`` models the idealized unbounded FIFO; with a bound, excess
    #: jobs are *shed* and the connection re-learned from its next packet.
    cpu_max_backlog: Optional[int] = None
    #: PCI-E ConnTable writes that fail (injected faults) are retried this
    #: many times before the job is given up and the key re-learned.
    install_retry_limit: int = 3
    #: Base delay before an install retry; attempt ``n`` waits ``n`` times
    #: this (linear backoff — the bus recovers quickly or not at all).
    install_retry_backoff_s: float = 1e-4
    #: Delay before a shed/lost connection re-enters the learning filter —
    #: models the next packet of the (still-unmatched) connection
    #: depositing a fresh learn event.
    relearn_delay_s: float = 1e-3
    #: Per-step watchdog deadline for 3-step updates.  ``None`` waits
    #: forever (the idealized model); with a deadline, a step that overruns
    #: force-advances and its still-pending keys are reclassified at-risk.
    update_step_deadline_s: Optional[float] = None

    # --- Versioning (§4.2).
    version_reuse: bool = True

    # --- Overflow policy (§7, "Combine with SLB solutions").
    #: When ConnTable is full, pin the connection in software (switch CPU
    #: or an SLB tier) instead of leaving it on the slow path: PCC is
    #: preserved at the cost of software-forwarded traffic, effectively
    #: treating ConnTable as a cache of connections.
    overflow_to_software: bool = False

    # --- Connection expiry: entry removed this long after the last packet.
    idle_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.conn_table_capacity <= 0:
            raise ValueError("conn_table_capacity must be positive")
        if not 1 <= self.digest_bits <= 64:
            raise ValueError("digest_bits must be in [1, 64]")
        if not 1 <= self.version_bits <= 16:
            raise ValueError("version_bits must be in [1, 16]")
        if self.transit_table_bytes <= 0:
            raise ValueError("transit_table_bytes must be positive")
        if self.insertion_rate_per_s <= 0:
            raise ValueError("insertion_rate_per_s must be positive")
        if self.learning_filter_capacity <= 0:
            raise ValueError("learning_filter_capacity must be positive")
        if self.learning_filter_timeout_s <= 0:
            raise ValueError("learning_filter_timeout_s must be positive")
        if self.idle_timeout_s < 0:
            raise ValueError("idle_timeout_s must be non-negative")
        if self.cpu_max_backlog is not None and self.cpu_max_backlog <= 0:
            raise ValueError("cpu_max_backlog must be positive or None")
        if self.install_retry_limit < 0:
            raise ValueError("install_retry_limit must be non-negative")
        if self.install_retry_backoff_s <= 0:
            raise ValueError("install_retry_backoff_s must be positive")
        if self.relearn_delay_s <= 0:
            raise ValueError("relearn_delay_s must be positive")
        if self.update_step_deadline_s is not None and self.update_step_deadline_s <= 0:
            raise ValueError("update_step_deadline_s must be positive or None")

    @property
    def num_versions(self) -> int:
        """Distinct DIP-pool versions representable per VIP."""
        return 1 << self.version_bits

    @property
    def conn_entry_bits(self) -> int:
        """Bits per packed ConnTable entry (28 with paper defaults)."""
        return self.digest_bits + self.version_bits + self.overhead_bits
