"""ConnTable: per-connection state in ASIC SRAM (§4.2).

A thin, load-balancer-flavoured wrapper around the generic multi-stage
cuckoo table of :mod:`repro.asicsim.cuckoo`: keys are connection 5-tuples
(as canonical bytes), values are DIP-pool version numbers, and the entry
layout is the paper's 28-bit packed record (16-bit digest + 6-bit version +
6-bit overhead; four entries per 112-bit SRAM word).

The module also provides the memory arithmetic for the three design points
Figure 14 compares:

* ``naive`` — full 5-tuple key, full DIP action (what a match-action table
  would store without SilkRoad's compaction; 55 bytes per IPv6 entry),
* ``digest_only`` — hash-digest key, full DIP action,
* ``digest_version`` — hash-digest key, version action (SilkRoad).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..asicsim.cuckoo import CuckooTable, InsertResult, LookupResult, TableFull
from ..asicsim.sram import DEFAULT_WORD_BITS, bytes_for_entries
from ..obs.metrics import Scope
from .config import SilkRoadConfig


class ConnTable:
    """The connection table of one SilkRoad switch."""

    def __init__(
        self,
        config: SilkRoadConfig,
        seed: int = 0x51CC_0AD0,
        metrics: Optional[Scope] = None,
    ) -> None:
        self.config = config
        self._table = CuckooTable.for_capacity(
            config.conn_table_capacity,
            target_load=config.conn_table_target_load,
            ways=config.conn_table_ways,
            stages=config.conn_table_stages,
            digest_bits=config.digest_bits,
            value_bits=config.version_bits,
            overhead_bits=config.overhead_bits,
            word_bits=config.word_bits,
            seed=seed,
            metrics=metrics,
        )

    # -- data plane ----------------------------------------------------

    def lookup(self, key: bytes, key_hash: Optional[int] = None) -> LookupResult:
        """Digest lookup, exactly as the ASIC performs it.

        ``key_hash`` is the connection's cached base hash; with it the
        lookup performs no byte hashing at all.
        """
        return self._table.lookup(key, key_hash)

    def lookup_batch(self, keys, key_hashes):
        """Digest lookups for a whole batch (no table mutation between
        elements — the caller owns the intra-batch ordering rule)."""
        return self._table.lookup_batch(keys, key_hashes)

    def prime_profiles(self, keys, key_hashes) -> None:
        """Vectorized warm-up of the per-key profile caches (batch mode)."""
        self._table.prime_profiles(keys, key_hashes)

    # -- software (switch CPU) -----------------------------------------

    def insert(
        self, key: bytes, version: int, key_hash: Optional[int] = None
    ) -> InsertResult:
        return self._table.insert(key, version, key_hash)

    def delete(self, key: bytes) -> None:
        self._table.delete(key)

    def get_exact(self, key: bytes) -> Optional[int]:
        return self._table.get_exact(key)

    def relocate_colliding_entry(
        self, new_key: bytes, key_hash: Optional[int] = None
    ) -> bool:
        """Resolve a digest collision for ``new_key``: find the resident
        entry its SYN falsely hit and move it to a different stage."""
        result = self._table.lookup(new_key, key_hash)
        if not result.hit or not result.false_positive:
            return True  # nothing to resolve
        assert result.location is not None
        slot = self._table._slots[result.location.stage][result.location.bucket][
            result.location.way
        ]
        assert slot is not None
        return self._table.relocate(slot.key)

    # -- introspection ---------------------------------------------------

    def __contains__(self, key: bytes) -> bool:
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)

    @property
    def capacity(self) -> int:
        return self._table.capacity

    @property
    def load_factor(self) -> float:
        return self._table.load_factor

    @property
    def false_positive_lookups(self) -> int:
        return self._table.false_positive_lookups

    @property
    def total_lookups(self) -> int:
        return self._table.total_lookups

    @property
    def failed_inserts(self) -> int:
        return self._table.failed_inserts

    @property
    def sram_bytes(self) -> int:
        return self._table.sram_bytes

    def check_invariants(self) -> None:
        self._table.check_invariants()


# ----------------------------------------------------------------------
# Figure 14 memory arithmetic
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EntryLayout:
    """Bit layout of one ConnTable entry under a design variant."""

    key_bits: int
    action_bits: int
    overhead_bits: int = 6

    @property
    def entry_bits(self) -> int:
        return self.key_bits + self.action_bits + self.overhead_bits


def naive_layout(ipv6: bool) -> EntryLayout:
    """Full 5-tuple -> full DIP (the paper's 55-byte IPv6 strawman)."""
    if ipv6:
        return EntryLayout(key_bits=37 * 8, action_bits=18 * 8)
    return EntryLayout(key_bits=13 * 8, action_bits=6 * 8)


def digest_only_layout(ipv6: bool, digest_bits: int = 16) -> EntryLayout:
    """Hash-digest key, full DIP action."""
    dip_bits = 18 * 8 if ipv6 else 6 * 8
    return EntryLayout(key_bits=digest_bits, action_bits=dip_bits)


def digest_version_layout(digest_bits: int = 16, version_bits: int = 6) -> EntryLayout:
    """SilkRoad: hash-digest key, pool-version action (28 bits default)."""
    return EntryLayout(key_bits=digest_bits, action_bits=version_bits)


def conn_table_bytes(
    num_connections: int,
    layout: EntryLayout,
    word_bits: int = DEFAULT_WORD_BITS,
) -> int:
    """SRAM bytes for a ConnTable under a given layout (word-packed)."""
    return bytes_for_entries(num_connections, layout.entry_bits, word_bits)


def memory_saving(
    num_connections: int,
    ipv6: bool,
    use_digest: bool = True,
    use_version: bool = True,
    digest_bits: int = 16,
    version_bits: int = 6,
    dip_pool_bytes: int = 0,
) -> float:
    """Fractional SRAM saving versus the naive layout (Figure 14).

    ``dip_pool_bytes`` adds the DIPPoolTable overhead that versioning
    requires (the extra indirection is charged against the saving).
    """
    base = conn_table_bytes(num_connections, naive_layout(ipv6))
    if base == 0:
        return 0.0
    if use_digest and use_version:
        layout = digest_version_layout(digest_bits, version_bits)
        cost = conn_table_bytes(num_connections, layout) + dip_pool_bytes
    elif use_digest:
        layout = digest_only_layout(ipv6, digest_bits)
        cost = conn_table_bytes(num_connections, layout)
    elif use_version:
        dip_bits = (37 * 8) if ipv6 else (13 * 8)
        layout = EntryLayout(key_bits=dip_bits, action_bits=version_bits)
        cost = conn_table_bytes(num_connections, layout) + dip_pool_bytes
    else:
        cost = base
    return max(0.0, 1.0 - cost / base)
