"""SilkRoad: the stateful L4 load balancer in a switching ASIC (§4, §5).

:class:`SilkRoadSwitch` composes the four tables of Figure 10 —

* **ConnTable** (multi-stage cuckoo, digest -> version),
* **VIPTable** (VIP -> version, with the step-2 dual-version transition),
* **DIPPoolTable** ((VIP, version) -> pool, with version reuse),
* **TransitTable** (pending-connection Bloom filter),

plus the learning filter, the switch-CPU insertion model, and the 3-step
PCC update coordinator.  It implements the flow-level simulator's
:class:`~repro.netsim.simulator.LoadBalancer` interface, recording every
forwarding-decision change onto the connections it carries.

Setting ``config.use_transit_table = False`` gives the paper's
"SilkRoad without TransitTable" ablation: updates execute immediately and
pending connections re-hash, breaking PCC for the few milliseconds of the
insertion window (Figures 16-18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from ..asicsim.batch import PacketBatch
from ..asicsim.cuckoo import DuplicateKey, TableFull
from ..asicsim.learning_filter import LearnBatch, LearnEvent, LearningFilter
from ..asicsim.meters import MeterBank
from ..netsim.events import EventHandle, EventQueue
from ..netsim.flows import Connection
from ..netsim.packet import DirectIP, VirtualIP
from ..netsim.simulator import LoadBalancer, PRIO_ARRIVAL, PRIO_INTERNAL
from ..netsim.updates import UpdateEvent, UpdateKind
from ..obs import FlightRecorder, MetricRegistry, Tracer, telemetry_to_dict
from .config import SilkRoadConfig
from .conn_table import ConnTable
from .control_plane import SwitchCpu
from .dip_pool_table import DipPoolTable, VersionsExhausted
from .pcc_update import Phase, UpdateCoordinator
from .transit_table import TransitTable
from .vip_table import VipTable


@dataclass(slots=True)
class _ConnState:
    """Everything the switch (hardware + software) knows about one conn.

    ``slots=True``: one instance per admitted connection, and both the
    allocation and the attribute traffic on the install/end/expire paths
    are measurably cheaper without a per-instance ``__dict__``.
    """

    conn: Connection
    vip: VirtualIP
    version: int
    installed: bool = False
    dead: bool = False
    #: ConnTable was full; the connection will never install (slow path).
    overflowed: bool = False
    #: the connection was written into the TransitTable during step 1.
    marked: bool = False
    #: step-2 Bloom false positive made this conn adopt the old version.
    adopted_old_via_fp: bool = False
    #: a watchdog force-advanced past this conn: its PCC protection window
    #: closed early and a violation, if any, is attributed to the fault.
    at_risk: bool = False
    current_dip: Optional[DirectIP] = None


class SilkRoadSwitch(LoadBalancer):
    """One SilkRoad switch instance."""

    def __init__(
        self,
        config: SilkRoadConfig = SilkRoadConfig(),
        name: str = "silkroad",
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
        recorder: Optional[FlightRecorder] = None,
    ):
        self.name = name
        self.config = config
        #: Optional flight recorder; ``None`` (the default) keeps every
        #: record site to one attribute load + branch, so the hot path is
        #: untouched unless forensics are requested (attach_recorder).
        self.recorder = recorder
        # Every switch owns a metrics registry and a tracer (always-on, the
        # instruments are cheap); callers may inject shared ones instead.
        self.metrics = (
            registry
            if registry is not None
            else MetricRegistry(labels={"switch": name})
        )
        self.tracer = tracer if tracer is not None else Tracer()
        self._cpu_metrics = self.metrics.scope("switch_cpu")
        self.vip_table = VipTable()
        self.dip_pools = DipPoolTable(
            version_bits=config.version_bits, version_reuse=config.version_reuse
        )
        self.conn_table = ConnTable(config, metrics=self.metrics.scope("conn_table"))
        self.transit = TransitTable(
            size_bytes=config.transit_table_bytes,
            num_hashes=config.transit_hash_ways,
            metrics=self.metrics.scope("transit_table"),
        )
        self.meters = MeterBank(metrics=self.metrics.scope("meters"))
        self.learning = LearningFilter(
            capacity=config.learning_filter_capacity,
            timeout=config.learning_filter_timeout_s,
            metrics=self.metrics.scope("learning_filter"),
        )
        self.coordinator = UpdateCoordinator(
            pending_keys=self._pending_keys_of,
            execute=self._execute_update,
            finish=self._finish_update,
            mark=self._mark_transit,
            now=lambda: self.queue.now,
            start=self._transit_update_started,
            tracer=self.tracer,
            metrics=self.metrics.scope("update"),
            step_deadline_s=config.update_step_deadline_s,
            schedule=lambda delay, action: self.queue.schedule_in(
                delay, action, PRIO_INTERNAL
            ),
            on_at_risk=self._on_at_risk,
        )
        self._states: Dict[bytes, _ConnState] = {}
        #: TransitTable update-id token per VIP mid-update (the coordinator
        #: serializes updates per VIP, so one token per VIP suffices).
        self._transit_update_ids: Dict[VirtualIP, int] = {}
        self._pending_by_vip: Dict[VirtualIP, Set[bytes]] = {}
        #: live (not-yet-ended) connections per VIP, so withdraw_vip does
        #: not scan every connection the switch has ever carried.
        self._live_by_vip: Dict[VirtualIP, Set[bytes]] = {}
        self._conns_on: Dict[Tuple[VirtualIP, DirectIP], Set[bytes]] = {}
        self._poll_handle: Optional[EventHandle] = None
        # Fault-delivery state (set by repro.faults.FaultInjector).
        self._drop_notifications = 0
        self._delay_notifications = 0
        self._notification_delay_s = 0.0
        # Counters
        self.fp_syn_redirects = 0
        self.transit_fp_adopted = 0
        self.transit_fp_corrected = 0
        self.table_full_events = 0
        self.overflow_pinned = 0
        self.version_exhaustion_events = 0
        self.connections_seen = 0
        self.notifications_lost = 0
        self.notifications_delayed = 0
        self.relearns = 0
        self.at_risk_connections = 0
        self.resumed_connections = 0
        #: Keys whose PCC exposure the fault model predicts — watchdog
        #: reclassifications, ConnTable overflows, step-2 Bloom adoptions.
        #: Persisted past connection death so post-run audits can attribute
        #: every observed violation (see :mod:`repro.core.verify`).
        self.at_risk_keys: Set[bytes] = set()
        self.overflow_keys: Set[bytes] = set()
        self.fp_adopted_keys: Set[bytes] = set()
        self._slow_path_metrics = self.metrics.scope("slow_path")
        self._m_relearns = self._slow_path_metrics.counter(
            "relearns_total", "connections re-learned after a slow-path loss"
        )
        self._m_notifications_lost = self._slow_path_metrics.counter(
            "notifications_lost_total", "learning-filter batches lost in delivery"
        )
        self._m_notifications_delayed = self._slow_path_metrics.counter(
            "notifications_delayed_total", "learning-filter batches delivered late"
        )
        self._register_switch_gauges()
        # A private queue lets the switch be driven directly as a library
        # object; FlowSimulator.bind() replaces it with the shared one.
        self.bind(EventQueue())

    def _register_switch_gauges(self) -> None:
        """Switch-level views over the slow-path counters (callback gauges,
        so the cost is paid at sample/export time only)."""
        scope = self.metrics.scope("switch")
        scope.gauge("pending_connections", "arrived but not yet installed").set_function(
            lambda: float(self.pending_connections())
        )
        scope.gauge("sram_bytes", "SRAM across all SilkRoad tables").set_function(
            lambda: float(self.sram_bytes())
        )
        scope.gauge("connections_seen", "connection arrivals").set_function(
            lambda: float(self.connections_seen)
        )
        scope.gauge("fp_syn_redirects", "SYNs redirected on digest collision").set_function(
            lambda: float(self.fp_syn_redirects)
        )
        scope.gauge("transit_fp_adopted", "conns pinned to old version by Bloom FP").set_function(
            lambda: float(self.transit_fp_adopted)
        )
        scope.gauge("table_full_events", "insertions hitting a full ConnTable").set_function(
            lambda: float(self.table_full_events)
        )
        scope.gauge("overflow_pinned", "conns pinned in software on overflow").set_function(
            lambda: float(self.overflow_pinned)
        )
        scope.gauge(
            "version_exhaustion_events", "updates dropped: version space full"
        ).set_function(lambda: float(self.version_exhaustion_events))
        scope.gauge(
            "at_risk_connections", "conns reclassified at-risk by watchdogs"
        ).set_function(lambda: float(self.at_risk_connections))

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------

    def announce_vip(self, vip: VirtualIP, dips) -> None:
        """Install a VIP with its initial DIP pool."""
        version = self.dip_pools.add_vip(vip, dips)
        self.vip_table.install(vip, version)

    def withdraw_vip(self, vip: VirtualIP) -> None:
        """Stop announcing a VIP.  Refused while connections still use it
        (drain them first, as an operator would withdraw BGP gradually)."""
        if self._live_by_vip.get(vip):
            raise ValueError(f"cannot withdraw {vip}: connections still active")
        if self.coordinator.phase(vip) is not Phase.IDLE:
            raise ValueError(f"cannot withdraw {vip}: update in flight")
        self.vip_table.withdraw(vip)
        self.dip_pools.remove_vip(vip)
        self._live_by_vip.pop(vip, None)

    # ------------------------------------------------------------------
    # LoadBalancer interface
    # ------------------------------------------------------------------

    def on_connection_arrival(self, conn: Connection) -> None:
        now = self.queue.now
        key = conn.key
        key_hash = conn.key_hash
        self.connections_seen += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.record(now, "conn", "syn", key=key, vip=str(conn.vip))
        result = self.conn_table.lookup(key, key_hash)
        if result.hit:
            # New connections are unique, so a hit is a digest false
            # positive.  The SYN is redirected to the CPU, which relocates
            # the colliding entry and installs this connection directly.
            assert result.false_positive
            self.fp_syn_redirects += 1
            if recorder is not None:
                recorder.record(now, "conn", "fp_syn_redirect", key=key)
            state = self._admit(conn, now)
            self._cpu.submit_one(
                key, ("fp",), extra_delay_s=self.config.fp_resolution_delay_s
            )
            return
        state = self._admit(conn, now)
        batch = self.learning.offer(key, now, key_hash=key_hash)
        if batch is not None:
            self._cancel_poll()
            self._deliver_batch(batch)
        self._arm_poll()

    def prepare_batch(self, conns) -> None:
        """Columnar precomputation for an upcoming window of arrivals.

        Materializes the :class:`PacketBatch` columns (key bytes, base
        hashes — one bulk byte pass) and primes the ConnTable profile
        caches for the whole window.  This is pure per-key derivation: no
        observable switch state is touched, so the batched driver runs it
        over windows of *future* arrivals regardless of the ends, updates
        and internal events interleaved between them.  Only the profile
        cache's LRU order (unobservable) can differ from scalar execution.
        """
        batch = PacketBatch.from_connections(conns)
        self.conn_table.prime_profiles(batch.keys, batch.base_hashes)

    def on_connection_batch(self, conns) -> None:
        """Batched arrivals (the hot path of the batched execution mode).

        Element ``i`` behaves exactly as a scalar
        :meth:`on_connection_arrival` at its own timestamp would: before
        each element, the internal events the scalar kernel would have
        fired first (learning-filter polls, CPU install completions,
        expiries, fault events) are drained via
        ``queue.run_until_before(start_i, PRIO_ARRIVAL)`` — the intra-batch
        ordering rule (docs/architecture.md).  What the batch buys is the
        fused per-element walk: the ConnTable fast-miss lookup is inlined
        with every attribute lookup hoisted out of the loop, feeding on
        the columns :meth:`prepare_batch` derived in vectorized bulk
        passes (key bytes, base hashes, cuckoo profiles).  Counter and
        metric updates replicate the scalar call chain increment for
        increment.
        """
        if self.recorder is not None:
            # Flight-recorder runs take the scalar path wholesale:
            # recording hooks interleave with every hot-path branch and
            # forensic runs are not the ones batching needs to speed up.
            queue = self.queue
            run_before = queue.run_until_before
            arrival = self.on_connection_arrival
            for conn in conns:
                run_before(conn.start, PRIO_ARRIVAL)
                queue.now = conn.start
                arrival(conn)
            return
        queue = self.queue
        run_before = queue.run_until_before
        table = self.conn_table._table
        profiles = table._profiles
        cache = table._profile_cache
        candidates = table._candidates
        shift = table._cand_shift
        offsets = table._stage_offsets
        m_lookups = table._m_lookups
        scan = table._scan
        offer = self.learning.offer
        admit = self._admit
        arm_poll = self._arm_poll
        for conn in conns:
            start = conn.start
            run_before(start, PRIO_ARRIVAL)
            queue.now = start
            key = conn.key
            key_hash = conn.key_hash
            self.connections_seen += 1
            # Inlined ConnTable.lookup (fast-miss candidate probe), same
            # counters and cache discipline as the scalar call.
            table.total_lookups += 1
            if m_lookups is not None:
                m_lookups.value += 1.0
            profile = profiles.get(key)
            if profile is None:
                profile = cache.get(key)
                if profile is not None:
                    cache.move_to_end(key)
                else:
                    profile = table._profile(key, key_hash)
            result = None
            for stage, (bucket, digest) in enumerate(profile):
                if (digest << shift | (offsets[stage] + bucket)) in candidates:
                    result = scan(key, profile)
                    break
            if result is not None and result.hit:
                assert result.false_positive
                self.fp_syn_redirects += 1
                admit(conn, start)
                self._cpu.submit_one(
                    key, ("fp",), extra_delay_s=self.config.fp_resolution_delay_s
                )
                continue
            admit(conn, start)
            batch = offer(key, start, key_hash=key_hash)
            if batch is not None:
                self._cancel_poll()
                self._deliver_batch(batch)
            arm_poll()

    def on_connection_end(self, conn: Connection) -> None:
        key = conn.key
        state = self._states.get(key)
        if state is None:
            return
        state.dead = True
        if self.recorder is not None:
            self.recorder.record(
                self.queue.now, "conn", "fin", key=key, installed=state.installed
            )
        live = self._live_by_vip.get(state.vip)
        if live is not None:
            live.discard(key)
        self._drop_decision_index(state)
        if state.installed:
            # Entry ages out idle_timeout after the last packet.  The timer
            # is pinned to this state object: if the key is re-admitted (or
            # ended twice, e.g. by a fleet hand-off racing the flow's own
            # FIN) before the timer fires, a stale timer must not evict the
            # newer entry or double-release its pool version.
            def expire(state: _ConnState = state) -> None:
                if self._states.get(key) is state:
                    self._expire_entry(key)

            self.queue.schedule_in(self.config.idle_timeout_s, expire, PRIO_INTERNAL)
        else:
            pending = self._pending_by_vip.get(state.vip)
            if pending is not None:
                pending.discard(key)
            self.coordinator.on_pending_aborted(state.vip, key)
            self.dip_pools.release(state.vip, state.version)
            del self._states[key]

    def resume_connection(self, conn: Connection) -> bool:
        """Re-adopt a flow steered back to this switch mid-life.

        When fabric ECMP re-steers a previously quiesced flow back here
        (failover ping-pong, a healed partition, a drained VIP returning)
        before its ConnTable entry ages out, the packets simply hit the
        surviving entry: the connection keeps its pinned version — no SYN,
        no learning filter, no new install.  Returns ``False`` when no
        lingering installed entry exists, in which case the caller replays
        a fresh arrival instead.
        """
        key = conn.key
        state = self._states.get(key)
        if state is None or not state.installed or key not in self.conn_table:
            return False
        now = self.queue.now
        # A fresh state object detaches the idle-timeout timer the quiesce
        # armed (expiry fires only against its own state instance).
        fresh = _ConnState(conn=state.conn, vip=state.vip, version=state.version)
        fresh.installed = True
        fresh.marked = state.marked
        fresh.overflowed = state.overflowed
        fresh.adopted_old_via_fp = state.adopted_old_via_fp
        fresh.at_risk = state.at_risk
        self._states[key] = fresh
        live = self._live_by_vip.get(state.vip)
        if live is None:
            live = self._live_by_vip[state.vip] = set()
        live.add(key)
        self._drop_decision_index(state)
        dip = self.dip_pools.select(state.vip, state.version, key, conn.key_hash)
        self._set_decision(fresh, dip, now)
        self.resumed_connections += 1
        if self.recorder is not None:
            self.recorder.record(
                now, "conn", "resume", key=key, version=state.version
            )
        return True

    def apply_update(
        self,
        event: UpdateEvent,
        on_finished: Optional[Callable[[VirtualIP, object], None]] = None,
    ) -> None:
        """Request a DIP-pool update.

        ``on_finished``, when given, fires once the update reaches
        ``t_finish`` (immediately in the no-TransitTable ablation, where
        updates execute in one step) — the hook the serving mode's
        admin-initiated drains use to track completion without polling.
        """
        if self.config.use_transit_table:
            self.coordinator.request(event, on_finished=on_finished)
        else:
            self._execute_update(event)
            if on_finished is not None:
                on_finished(event.vip, None)

    def finalize(self) -> None:
        # Cancel the armed timeout poll first: the flush below empties the
        # filter, and a timer left armed would later fire poll() against
        # the already-flushed filter (or a refilled one, flushing it early).
        self._cancel_poll()
        batch = self.learning.flush(self.queue.now)
        if batch is not None:
            self._deliver_batch(batch)

    # ------------------------------------------------------------------
    # Introspection (control API / serving mode)
    # ------------------------------------------------------------------

    def current_dips(self, vip: VirtualIP) -> Tuple[DirectIP, ...]:
        """Distinct DIPs in the VIP's *current* pool version, slot order."""
        version = self.dip_pools.current_version(vip)
        seen: Dict[DirectIP, None] = {}
        for dip in self.dip_pools.pool(vip, version).slots:
            seen.setdefault(dip, None)
        return tuple(seen)

    def dip_weight(self, vip: VirtualIP, dip: DirectIP) -> int:
        """Slot multiplicity of ``dip`` in the current pool (0 if absent)."""
        version = self.dip_pools.current_version(vip)
        return sum(1 for d in self.dip_pools.pool(vip, version).slots if d == dip)

    def live_connections_on(self, vip: VirtualIP, dip: DirectIP) -> int:
        """Live connections currently mapped to ``(vip, dip)``.

        Ended connections leave the index immediately, so a drained DIP
        reads 0 exactly when its last pinned connection finishes — the
        signal the serving mode's drain-completion check polls.
        """
        bucket = self._conns_on.get((vip, dip))
        return len(bucket) if bucket else 0

    # ------------------------------------------------------------------
    # Admission: version decision for a brand-new connection (Figure 10)
    # ------------------------------------------------------------------

    def _admit(self, conn: Connection, now: float) -> _ConnState:
        vip = conn.vip
        key = conn.key
        key_hash = conn.key_hash
        entry = self.vip_table.lookup(vip)
        adopted_old = False
        if entry.in_transition and self.config.use_transit_table:
            # Step 2: ConnTable miss -> consult the TransitTable.
            query = self.transit.check(key, key_hash)
            if query.positive:
                # A new connection can only hit the filter falsely.
                if self.config.syn_redirect_on_transit_fp:
                    self.transit_fp_corrected += 1
                    version = entry.current_version
                    if self.recorder is not None:
                        self.recorder.record(now, "conn", "fp_corrected", key=key)
                else:
                    self.transit_fp_adopted += 1
                    self.fp_adopted_keys.add(key)
                    assert entry.old_version is not None
                    version = entry.old_version
                    adopted_old = True
                    if self.recorder is not None:
                        self.recorder.record(
                            now, "conn", "fp_adopted", key=key,
                            vip=str(vip), old_version=entry.old_version,
                        )
            else:
                version = entry.current_version
        else:
            version = entry.current_version
        state = _ConnState(conn=conn, vip=vip, version=version)
        state.adopted_old_via_fp = adopted_old
        self._states[key] = state
        self.dip_pools.acquire(vip, version)
        # get-then-insert instead of setdefault: this runs once per
        # admitted connection and setdefault would allocate a throwaway
        # set on every call once the VIP's entry exists.
        pending = self._pending_by_vip.get(vip)
        if pending is None:
            pending = self._pending_by_vip[vip] = set()
        pending.add(key)
        live = self._live_by_vip.get(vip)
        if live is None:
            live = self._live_by_vip[vip] = set()
        live.add(key)
        # Step 1 of an in-flight update marks the connection.
        state.marked = self.coordinator.note_new_pending(vip, key)
        if state.marked and self.recorder is not None:
            self.recorder.record(now, "conn", "marked", key=key, vip=str(vip))
        dip = self.dip_pools.select(vip, version, key, key_hash)
        self._set_decision(state, dip, now)
        return state

    # ------------------------------------------------------------------
    # CPU completion path
    # ------------------------------------------------------------------

    def _on_installed(self, key: bytes, metadata: Tuple) -> None:
        now = self.queue.now
        state = self._states.get(key)
        if state is None or state.dead:
            # Connection ended before its entry was written; nothing to do
            # (the abort already told the coordinator).
            return
        key_hash = state.conn.key_hash
        if metadata and metadata[0] == "fp":
            # Redirected SYN: resolve the digest collision first.
            self.conn_table.relocate_colliding_entry(key, key_hash)
        try:
            result = self.conn_table.insert(key, state.version, key_hash)
        except TableFull:
            self.table_full_events += 1
            if self.config.overflow_to_software:
                # §7 hybrid: the connection is pinned in software (switch
                # CPU or an SLB), so its mapping is frozen and PCC holds;
                # only the forwarding medium changes.
                self.overflow_pinned += 1
                state.installed = True
                pending = self._pending_by_vip.get(state.vip)
                if pending is not None:
                    pending.discard(key)
                self.coordinator.on_installed(state.vip, key)
                if self.recorder is not None:
                    self.recorder.record(
                        now, "conn", "overflow", key=key, pinned=True
                    )
            else:
                # The connection stays on the slow path: it will re-hash
                # at the next VIPTable flip.  Tell the coordinator to stop
                # waiting for it (and never snapshot it again), or updates
                # would stall forever.
                state.overflowed = True
                self.overflow_keys.add(key)
                self.coordinator.on_pending_aborted(state.vip, key)
                if self.recorder is not None:
                    self.recorder.record(
                        now, "conn", "overflow", key=key, pinned=False
                    )
            return
        except DuplicateKey:
            return
        state.installed = True
        if self.recorder is not None:
            self.recorder.record(
                now, "conn", "install", key=key,
                version=state.version, moves=result.moves,
            )
        pending = self._pending_by_vip.get(state.vip)
        if pending is not None:
            pending.discard(key)
        self.coordinator.on_installed(state.vip, key)
        # The installed entry pins the connection to its arrival version;
        # if interim VIPTable flips re-mapped it (no-TransitTable mode),
        # the decision now reverts.
        dip = self.dip_pools.select(state.vip, state.version, key, key_hash)
        self._set_decision(state, dip, now)

    def _expire_entry(self, key: bytes) -> None:
        state = self._states.pop(key, None)
        if state is None:
            return
        if state.installed and key in self.conn_table:
            self.conn_table.delete(key)
            if self.recorder is not None:
                self.recorder.record(self.queue.now, "conn", "evict", key=key)
        self.dip_pools.release(state.vip, state.version)

    # ------------------------------------------------------------------
    # Update execution (t_exec) and completion (t_finish)
    # ------------------------------------------------------------------

    def _execute_update(self, event: UpdateEvent) -> None:
        now = self.queue.now
        vip = event.vip
        old_version = self.dip_pools.current_version(vip)
        try:
            if event.kind is UpdateKind.REMOVE or event.kind is UpdateKind.DRAIN:
                new_version = self.dip_pools.remove_dip(vip, event.dip)
            elif event.kind is UpdateKind.WEIGHT:
                new_version = self.dip_pools.set_weight(vip, event.dip, event.weight)
                if new_version == old_version:
                    # Weight already matches: nothing transitions.
                    return
            else:
                new_version = self.dip_pools.add_dip(vip, event.dip)
        except VersionsExhausted:
            self.version_exhaustion_events += 1
            if self.recorder is not None:
                self.recorder.record(
                    now, "update", "version_exhausted", vip=str(vip)
                )
            return
        if self.recorder is not None:
            self.recorder.record(
                now, "update", "t_exec", vip=str(vip),
                kind=event.kind.name.lower(), dip=str(event.dip),
                old_version=old_version, new_version=new_version,
            )
        if event.kind is UpdateKind.REMOVE:
            self._break_connections_on(vip, event.dip)
        if self.config.use_transit_table:
            self.vip_table.begin_transition(vip, new_version)
            # Marked pending connections keep the old version via the
            # filter.  Un-marked, un-installed connections can only be
            # slow-path overflow (a full ConnTable): from now on their
            # packets miss ConnTable and consult the filter like any other
            # miss — usually re-hashing to the new version.
            for key in self._pending_by_vip.get(vip, set()):
                state = self._states.get(key)
                if state is None or state.dead or state.installed or state.marked:
                    continue
                key_hash = state.conn.key_hash
                query = self.transit.check(key, key_hash)
                use_version = old_version if query.positive else new_version
                dip = self.dip_pools.select(vip, use_version, key, key_hash)
                self._set_decision(state, dip, now)
        else:
            self.vip_table.set_version(vip, new_version)
            self._remap_pending(vip, new_version, now)

    def _finish_update(self, vip: VirtualIP) -> None:
        now = self.queue.now
        if self.recorder is not None:
            self.recorder.record(now, "update", "t_finish", vip=str(vip))
        # A weight no-op (or a version-exhausted execute) never began a
        # transition: there is no old version to drop, but the update's
        # marks still evict and the pending-state flags still clear.
        if self.vip_table.lookup(vip).in_transition:
            self.vip_table.end_transition(vip)
        # Evict exactly this update's marks: overlapping updates of other
        # VIPs keep theirs, but no stale bit outlives its own update.
        self.transit.update_finished(self._transit_update_ids.pop(vip, None))
        # Pending connections lose their old-version protection when the
        # filter clears: conns that adopted the old version through a Bloom
        # false positive, and marked conns a step-2 watchdog force-finished
        # past (at-risk).  Their next packets miss ConnTable and take the
        # (new) current version.
        entry = self.vip_table.lookup(vip)
        for key in list(self._pending_by_vip.get(vip, ())):
            state = self._states.get(key)
            if state is None or state.dead:
                continue
            if state.adopted_old_via_fp:
                state.adopted_old_via_fp = False
            elif state.at_risk and state.marked and not state.installed:
                # The mark just got evicted with the rest of this update's.
                state.marked = False
            else:
                continue
            dip = self.dip_pools.select(
                vip, entry.current_version, key, state.conn.key_hash
            )
            self._set_decision(state, dip, now)

    def _remap_pending(self, vip: VirtualIP, new_version: int, now: float) -> None:
        """No-TransitTable mode: pending connections re-hash immediately."""
        for key in list(self._pending_by_vip.get(vip, ())):
            state = self._states.get(key)
            if state is None or state.dead:
                continue
            dip = self.dip_pools.select(vip, new_version, key, state.conn.key_hash)
            self._set_decision(state, dip, now)

    # ------------------------------------------------------------------
    # Coordinator plumbing
    # ------------------------------------------------------------------

    def _pending_keys_of(self, vip: VirtualIP) -> Set[bytes]:
        """Pending connections an update must wait for.

        Slow-path overflow connections are excluded: they will never
        install, so waiting for them would stall every future update.
        """
        return {
            key
            for key in self._pending_by_vip.get(vip, set())
            if not self._states[key].overflowed
        }

    def _transit_update_started(self, vip: VirtualIP) -> None:
        """Step 1 begins for ``vip``: reserve a TransitTable update id so
        the update's marks can be evicted precisely at its own step 3."""
        self._transit_update_ids[vip] = self.transit.update_started()
        if self.recorder is not None:
            self.recorder.record(
                self.queue.now, "update", "t_req", vip=str(vip),
                update_id=self._transit_update_ids[vip],
            )

    def _mark_transit(self, key: bytes) -> None:
        state = self._states.get(key)
        if state is not None:
            self.transit.mark(
                key,
                key_hash=state.conn.key_hash,
                update_id=self._transit_update_ids.get(state.vip),
            )
        else:
            self.transit.mark(key)

    def _on_at_risk(self, vip: VirtualIP, keys: Set[bytes], phase: Phase) -> None:
        """A watchdog force-advanced past ``keys``: their protection window
        closed early, so any PCC break they suffer is a predicted fault
        outcome, not a model bug."""
        self.at_risk_connections += len(keys)
        self.at_risk_keys.update(keys)
        recorder = self.recorder
        if recorder is not None:
            now = self.queue.now
            recorder.record(
                now, "update", "watchdog_forced", vip=str(vip),
                phase=phase.name, at_risk=len(keys),
            )
            for key in sorted(keys):
                recorder.record(
                    now, "conn", "at_risk", key=key,
                    vip=str(vip), phase=phase.name,
                )
        for key in keys:
            state = self._states.get(key)
            if state is not None:
                state.at_risk = True

    # ------------------------------------------------------------------
    # Slow-path failure handling (see repro.faults and docs/robustness.md)
    # ------------------------------------------------------------------

    def _deliver_batch(self, batch: Optional[LearnBatch]) -> None:
        """Hand a learning-filter batch to the CPU — the notification hop
        fault injection targets (loss and delay)."""
        if batch is None:
            return
        recorder = self.recorder
        if self._drop_notifications > 0:
            self._drop_notifications -= 1
            self.notifications_lost += 1
            self._m_notifications_lost.value += 1.0
            if recorder is not None:
                recorder.record(
                    self.queue.now, "slowpath", "batch_lost",
                    size=len(batch.events), reason=batch.reason,
                )
            for event in batch.events:
                self._schedule_relearn(event.key, event.metadata)
            return
        if self._delay_notifications > 0:
            self._delay_notifications -= 1
            self.notifications_delayed += 1
            self._m_notifications_delayed.value += 1.0
            if recorder is not None:
                recorder.record(
                    self.queue.now, "slowpath", "batch_delayed",
                    size=len(batch.events), delay_s=self._notification_delay_s,
                )
            self.queue.schedule_in(
                self._notification_delay_s,
                lambda: self._cpu.submit_batch(batch),
                PRIO_INTERNAL,
            )
            return
        if recorder is not None:
            recorder.record(
                self.queue.now, "slowpath", "batch_delivered",
                size=len(batch.events), reason=batch.reason,
            )
        self._cpu.submit_batch(batch)

    def _on_job_dropped(self, key: bytes, metadata: Tuple, reason: str) -> None:
        """A slow-path job was shed, lost to a crash, or failed its write:
        the connection is still unmatched in the data plane, so it will be
        re-learned from its next packet."""
        if self.recorder is not None:
            self.recorder.record(
                self.queue.now, "slowpath", f"job_{reason}", key=key
            )
        self._schedule_relearn(key, metadata)

    def _schedule_relearn(self, key: bytes, metadata: Tuple) -> None:
        state = self._states.get(key)
        if state is None or state.dead or state.installed or state.overflowed:
            return

        def fire() -> None:
            st = self._states.get(key)
            if st is None or st.dead or st.installed or st.overflowed:
                return
            if self._cpu.down:
                # No point depositing events the CPU cannot drain; try
                # again next "packet".
                self.queue.schedule_in(
                    self.config.relearn_delay_s, fire, PRIO_INTERNAL
                )
                return
            self.relearns += 1
            self._m_relearns.value += 1.0
            if self.recorder is not None:
                self.recorder.record(
                    self.queue.now, "slowpath", "relearn", key=key
                )
            event = LearnEvent(
                key=key,
                metadata=metadata,
                first_seen=self.queue.now,
                key_hash=st.conn.key_hash,
            )
            batches = self.learning.rearm([event], self.queue.now)
            if batches:
                self._cancel_poll()
                for batch in batches:
                    self._deliver_batch(batch)
            self._arm_poll()

        self.queue.schedule_in(self.config.relearn_delay_s, fire, PRIO_INTERNAL)

    def _on_cpu_restart(self) -> None:
        """The crashed CPU came back: re-arm the learning-filter timer so
        batches flow again (lost jobs re-learn via :meth:`_schedule_relearn`)."""
        if self.recorder is not None:
            self.recorder.record(self.queue.now, "slowpath", "cpu_restart")
        self._arm_poll()

    # -- fault-injection surface (used by repro.faults.FaultInjector) ----

    def inject_cpu_crash(self, restart_delay_s: float) -> int:
        """Crash the switch CPU; returns the number of jobs lost."""
        lost = len(self._cpu.crash(restart_delay_s))
        if self.recorder is not None:
            self.recorder.record(
                self.queue.now, "slowpath", "cpu_crash",
                jobs_lost=lost, restart_delay_s=restart_delay_s,
            )
        return lost

    def inject_cpu_stall(self, duration_s: float) -> None:
        """Freeze the switch CPU for ``duration_s``."""
        if self.recorder is not None:
            self.recorder.record(
                self.queue.now, "slowpath", "cpu_stall", duration_s=duration_s
            )
        self._cpu.stall(duration_s)

    def set_write_fault(self, fault: Optional[Callable[[bytes], bool]]) -> None:
        """Install (or clear) the per-install PCI-E write-fault hook."""
        self._cpu.write_fault = fault

    def drop_notifications(self, count: int = 1) -> None:
        """Lose the next ``count`` learning-filter notifications."""
        self._drop_notifications += count

    def delay_notifications(self, count: int, delay_s: float) -> None:
        """Deliver the next ``count`` learning-filter batches late."""
        self._delay_notifications += count
        self._notification_delay_s = delay_s

    # ------------------------------------------------------------------
    # Decision bookkeeping
    # ------------------------------------------------------------------

    def _set_decision(self, state: _ConnState, dip: DirectIP, now: float) -> None:
        if state.current_dip == dip:
            return
        self._drop_decision_index(state)
        state.current_dip = dip
        self._conns_on.setdefault((state.vip, dip), set()).add(state.conn.key)
        if state.conn.active_at(now) or now <= state.conn.start:
            state.conn.record_decision(now, dip)

    def _drop_decision_index(self, state: _ConnState) -> None:
        if state.current_dip is None:
            return
        bucket = self._conns_on.get((state.vip, state.current_dip))
        if bucket is not None:
            bucket.discard(state.conn.key)

    def _break_connections_on(self, vip: VirtualIP, dip: DirectIP) -> None:
        """The server behind ``dip`` is going down: connections currently
        mapped to it break regardless of what the load balancer does."""
        for key in self._conns_on.get((vip, dip), set()):
            state = self._states.get(key)
            if state is not None and not state.dead:
                state.conn.broken_by_removal = True

    # ------------------------------------------------------------------
    # Learning-filter timeout polling
    # ------------------------------------------------------------------

    def _arm_poll(self) -> None:
        deadline = self.learning.next_deadline()
        if deadline is None:
            return
        handle = self._poll_handle
        if handle is not None and not handle.cancelled:
            return
        # Bound method, not a per-arm closure: this arms once per arrival
        # on the hot path, and the closure allocation was measurable.
        self._poll_handle = self.queue.schedule(
            deadline, self._poll_fire, PRIO_INTERNAL
        )

    def _poll_fire(self) -> None:
        self._poll_handle = None
        batch = self.learning.poll(self.queue.now)
        if batch is not None:
            self._deliver_batch(batch)
        self._arm_poll()

    def _cancel_poll(self) -> None:
        if self._poll_handle is not None:
            self._poll_handle.cancel()
            self._poll_handle = None

    # ------------------------------------------------------------------
    # Simulation wiring and reporting
    # ------------------------------------------------------------------

    def bind(self, queue: EventQueue) -> None:
        super().bind(queue)
        self._cpu = SwitchCpu(
            queue,
            insertion_rate_per_s=self.config.insertion_rate_per_s,
            on_installed=self._on_installed,
            metrics=self._cpu_metrics,
            max_backlog=self.config.cpu_max_backlog,
            retry_limit=self.config.install_retry_limit,
            retry_backoff_s=self.config.install_retry_backoff_s,
        )
        # Every way a job can leave the slow path without installing ends
        # the same: the connection re-learns from its next packet.  The
        # reason tag only feeds the flight recorder's event stream.
        self._cpu.on_shed = lambda key, meta: self._on_job_dropped(
            key, meta, "shed"
        )
        self._cpu.on_lost = lambda key, meta: self._on_job_dropped(
            key, meta, "lost"
        )
        self._cpu.on_install_failed = lambda key, meta: self._on_job_dropped(
            key, meta, "install_failed"
        )
        self._cpu.on_restart = self._on_cpu_restart

    def attach_recorder(self, recorder: Optional[FlightRecorder]) -> None:
        """Attach (or detach, with ``None``) a flight recorder.

        Safe at any point — record sites read ``self.recorder`` on every
        event, so a recorder attached between construction and the run
        captures the whole simulation.
        """
        self.recorder = recorder

    def apply_update_now(self, event: UpdateEvent) -> None:
        """Convenience for library users driving the switch directly."""
        self.apply_update(event)

    @property
    def cpu(self) -> SwitchCpu:
        return self._cpu

    def pending_connections(self) -> int:
        return sum(len(keys) for keys in self._pending_by_vip.values())

    def sram_bytes(self, ipv6: Optional[bool] = None) -> int:
        """Total SRAM the SilkRoad tables occupy on this switch."""
        if ipv6 is None:
            ipv6 = any(vip.v6 for vip in self.vip_table.vips())
        dip_bytes = 18 if ipv6 else 6
        return (
            self.conn_table.sram_bytes
            + self.dip_pools.sram_bytes(dip_bytes=dip_bytes)
            + self.vip_table.sram_bytes(ipv6=ipv6)
            + self.transit.size_bytes
            + self.meters.sram_bytes
        )

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Machine-readable dump: every metric, every finished trace span,
        plus the legacy flat counters.  The shape matches what
        ``python -m repro.cli telemetry`` emits per switch."""
        extra: Dict[str, object] = {"switch": self.name, "counters": self.report()}
        if self.recorder is not None:
            extra["recorder"] = self.recorder.summary()
        return telemetry_to_dict(self.metrics, self.tracer, extra=extra)

    def report(self) -> Dict[str, float]:
        return {
            "conn_table_entries": float(len(self.conn_table)),
            "conn_table_load": self.conn_table.load_factor,
            "conn_table_fp_lookups": float(self.conn_table.false_positive_lookups),
            "fp_syn_redirects": float(self.fp_syn_redirects),
            "transit_fp_adopted": float(self.transit_fp_adopted),
            "transit_fp_corrected": float(self.transit_fp_corrected),
            "transit_false_positives": float(self.transit.false_positives),
            "table_full_events": float(self.table_full_events),
            "overflow_pinned": float(self.overflow_pinned),
            "version_exhaustion_events": float(self.version_exhaustion_events),
            "updates_requested": float(self.coordinator.updates_requested),
            "updates_completed": float(self.coordinator.updates_completed),
            "cpu_backlog": float(self._cpu.backlog if hasattr(self, "_cpu") else 0),
            "cpu_jobs_shed": float(self._cpu.shed),
            "cpu_jobs_lost": float(self._cpu.lost),
            "cpu_install_retries": float(self._cpu.retries),
            "cpu_install_failures": float(self._cpu.install_failures),
            "cpu_crashes": float(self._cpu.crashes),
            "cpu_stalls": float(self._cpu.stalls),
            "notifications_lost": float(self.notifications_lost),
            "notifications_delayed": float(self.notifications_delayed),
            "relearns": float(self.relearns),
            "at_risk_connections": float(self.at_risk_connections),
            "resumed_connections": float(self.resumed_connections),
            "watchdog_forced_steps": float(self.coordinator.watchdog_forced_steps),
            "sram_bytes": float(self.sram_bytes()),
        }
