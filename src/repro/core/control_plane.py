"""Switch-CPU model: slow-path connection learning and insertion (§4.1, §5.2).

The switch's embedded x86 CPU drains learning-filter batches, runs the
cuckoo BFS to pick slots, and writes entries into ConnTable over PCI-E.
The paper measures ~200 K insertions/second as achievable; that rate, not
the data plane, is what creates *pending connections* and hence the whole
PCC problem.

The CPU is modelled as a single-server FIFO: entries complete at
``1/insertion_rate`` intervals, starting when the CPU is free.  Redirected
false-positive TCP SYNs are handled as separate jobs with a fixed software
delay (a few milliseconds, §4.2).

Unlike the original perfectly-reliable FIFO, this model can *fail* the way
a real slow path does (see ``repro.faults`` and docs/robustness.md):

* a **bounded backlog** (``max_backlog``) sheds excess jobs instead of
  queueing them forever — shed keys are reported through ``on_shed`` so
  the switch can re-learn them from the connection's next packet;
* ConnTable writes are **acknowledged**: an injected PCI-E write fault
  (the ``write_fault`` hook) triggers bounded retry with linear backoff,
  and a job that exhausts its retries is reported via
  ``on_install_failed``;
* the CPU can **crash** (in-flight and queued jobs lost) and **restart**,
  reporting the lost jobs through ``on_restart``, and can **stall**,
  pushing every outstanding completion out by the stall window.

All hooks default to disabled, in which case behaviour is bit-identical to
the reliable FIFO.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..asicsim.learning_filter import LearnBatch
from ..netsim.events import EventHandle, EventQueue
from ..netsim.simulator import PRIO_INTERNAL
from ..obs.metrics import LATENCY_BUCKETS_S, Scope

#: Callback invoked when the CPU finishes installing one connection:
#: ``(key, metadata)``.
InstallCallback = Callable[[bytes, Tuple], None]

#: Callback for a job that left the CPU without installing: ``(key, metadata)``.
JobCallback = Callable[[bytes, Tuple], None]


class _Job:
    """One accepted insertion job and its scheduled completion."""

    __slots__ = ("key", "metadata", "attempts", "handle")

    def __init__(self, key: bytes, metadata: Tuple) -> None:
        self.key = key
        self.metadata = metadata
        self.attempts = 0
        self.handle: Optional[EventHandle] = None


class SwitchCpu:
    """Single-core switch CPU processing ConnTable insertions in FIFO order."""

    def __init__(
        self,
        queue: EventQueue,
        insertion_rate_per_s: float,
        on_installed: InstallCallback,
        metrics: Optional[Scope] = None,
        max_backlog: Optional[int] = None,
        retry_limit: int = 0,
        retry_backoff_s: float = 1e-4,
    ) -> None:
        if insertion_rate_per_s <= 0:
            raise ValueError("insertion rate must be positive")
        if max_backlog is not None and max_backlog <= 0:
            raise ValueError("max_backlog must be positive or None")
        self.queue = queue
        self.insertion_rate_per_s = insertion_rate_per_s
        self.on_installed = on_installed
        self.max_backlog = max_backlog
        self.retry_limit = retry_limit
        self.retry_backoff_s = retry_backoff_s
        # Failure-path hooks; all optional.  ``write_fault`` is consulted
        # once per install attempt (fault injectors set it); the rest tell
        # the switch what left the slow path without installing.
        self.write_fault: Optional[Callable[[bytes], bool]] = None
        self.on_shed: Optional[JobCallback] = None
        self.on_lost: Optional[JobCallback] = None
        self.on_install_failed: Optional[JobCallback] = None
        self.on_restart: Optional[Callable[[], None]] = None
        # -inf: the CPU has never been busy (the simulation clock may start
        # negative during warm-up replay).
        self._busy_until = float("-inf")
        self.down = False
        #: Accepted jobs not yet completed/failed, in submission order.
        self._outstanding: Dict[int, _Job] = {}
        self._job_seq = 0
        self.submitted = 0
        self.completed = 0
        self.batches = 0
        self.shed = 0
        self.lost = 0
        self.retries = 0
        self.install_failures = 0
        self.crashes = 0
        self.stalls = 0
        if metrics is None:
            self._m_submitted = self._m_installed = None
            self._m_batches = self._m_queue_delay = None
            self._m_shed = self._m_lost = self._m_retries = None
            self._m_failures = self._m_crashes = self._m_stalls = None
        else:
            self._m_submitted = metrics.counter(
                "jobs_submitted_total", "insertion jobs queued on the CPU"
            )
            self._m_installed = metrics.counter(
                "installs_total", "ConnTable installs completed"
            )
            self._m_batches = metrics.counter(
                "batches_total", "learning-filter batches accepted"
            )
            self._m_queue_delay = metrics.histogram(
                "batch_queueing_delay_s",
                buckets=LATENCY_BUCKETS_S,
                quantiles=(0.5, 0.99),
                help="wait before the CPU starts a newly submitted batch",
            )
            self._m_shed = metrics.counter(
                "jobs_shed_total", "jobs dropped by the bounded-backlog policy"
            )
            self._m_lost = metrics.counter(
                "jobs_lost_total", "jobs lost to CPU crashes or downtime"
            )
            self._m_retries = metrics.counter(
                "install_retries_total", "ConnTable writes retried after a fault"
            )
            self._m_failures = metrics.counter(
                "install_failures_total", "jobs abandoned after exhausting retries"
            )
            self._m_crashes = metrics.counter("crashes_total", "CPU crash events")
            self._m_stalls = metrics.counter("stalls_total", "CPU stall windows")
            # Re-registering after a rebind re-points the callbacks at the
            # new CPU instance; counters are shared and keep accumulating.
            metrics.gauge("backlog", "entries submitted but not installed").set_function(
                lambda: float(self.backlog)
            )
            metrics.gauge(
                "queueing_delay_s", "time until a job submitted now would start"
            ).set_function(self.queueing_delay)

    @property
    def per_entry_s(self) -> float:
        return 1.0 / self.insertion_rate_per_s

    @property
    def backlog(self) -> int:
        """Jobs accepted but not yet installed (or abandoned)."""
        return len(self._outstanding)

    def queueing_delay(self) -> float:
        """Time until the CPU would start a job submitted now."""
        return max(0.0, self._busy_until - self.queue.now)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit_batch(self, batch: LearnBatch) -> None:
        """Enqueue a learning-filter batch; entries complete sequentially.

        While the CPU is down the whole batch is lost (reported through
        ``on_lost``); with a bounded backlog the tail of the batch that
        does not fit is shed (reported through ``on_shed``).
        """
        if self.down:
            for event in batch.events:
                self._lose(event.key, event.metadata)
            return
        self.batches += 1
        start = max(self.queue.now, self._busy_until)
        if self._m_batches is not None:
            self._m_batches.value += 1.0
            self._m_queue_delay.observe(max(0.0, start - self.queue.now))
        for event in batch.events:
            if not self._has_capacity():
                self._shed(event.key, event.metadata)
                continue
            start += self.per_entry_s
            self._schedule_install(event.key, event.metadata, start)
        self._busy_until = max(self._busy_until, start)

    def submit_one(self, key: bytes, metadata: Tuple, extra_delay_s: float = 0.0) -> None:
        """Enqueue a single out-of-band job (e.g. a redirected SYN fix)."""
        if self.down:
            self._lose(key, metadata)
            return
        if not self._has_capacity():
            self._shed(key, metadata)
            return
        start = max(self.queue.now, self._busy_until) + extra_delay_s + self.per_entry_s
        self._schedule_install(key, metadata, start)
        self._busy_until = start

    def _has_capacity(self) -> bool:
        return self.max_backlog is None or len(self._outstanding) < self.max_backlog

    def _shed(self, key: bytes, metadata: Tuple) -> None:
        self.shed += 1
        if self._m_shed is not None:
            self._m_shed.value += 1.0
        if self.on_shed is not None:
            self.on_shed(key, metadata)

    def _lose(self, key: bytes, metadata: Tuple) -> None:
        self.lost += 1
        if self._m_lost is not None:
            self._m_lost.value += 1.0
        if self.on_lost is not None:
            self.on_lost(key, metadata)

    # ------------------------------------------------------------------
    # Completion (with write acknowledgement and retry)
    # ------------------------------------------------------------------

    def _schedule_install(self, key: bytes, metadata: Tuple, when: float) -> None:
        self.submitted += 1
        if self._m_submitted is not None:
            self._m_submitted.value += 1.0
        job = _Job(key, metadata)
        self._job_seq += 1
        job_id = self._job_seq
        self._outstanding[job_id] = job

        def fire() -> None:
            self._complete(job_id, job)

        job.handle = self.queue.schedule(when, fire, PRIO_INTERNAL)

    def _complete(self, job_id: int, job: _Job) -> None:
        job.attempts += 1
        if self.write_fault is not None and self.write_fault(job.key):
            if job.attempts <= self.retry_limit:
                self.retries += 1
                if self._m_retries is not None:
                    self._m_retries.value += 1.0
                delay = self.retry_backoff_s * job.attempts

                def fire() -> None:
                    self._complete(job_id, job)

                job.handle = self.queue.schedule_in(delay, fire, PRIO_INTERNAL)
                return
            # Retries exhausted: the write never acknowledged.
            del self._outstanding[job_id]
            self.install_failures += 1
            if self._m_failures is not None:
                self._m_failures.value += 1.0
            if self.on_install_failed is not None:
                self.on_install_failed(job.key, job.metadata)
            return
        del self._outstanding[job_id]
        self.completed += 1
        if self._m_installed is not None:
            self._m_installed.value += 1.0
        self.on_installed(job.key, job.metadata)

    # ------------------------------------------------------------------
    # Fault semantics: crash/restart and stall
    # ------------------------------------------------------------------

    def crash(self, restart_delay_s: float) -> List[Tuple[bytes, Tuple]]:
        """The CPU process dies; every queued and in-flight job is lost.

        Submissions are refused (lost) until the restart ``restart_delay_s``
        later.  Returns the lost ``(key, metadata)`` jobs in submission
        order; each is also reported through ``on_lost``, and ``on_restart``
        fires when the CPU comes back (the switch re-arms learning there).
        """
        if restart_delay_s < 0:
            raise ValueError("restart_delay_s must be non-negative")
        if self.down:
            return []
        self.down = True
        self.crashes += 1
        if self._m_crashes is not None:
            self._m_crashes.value += 1.0
        lost: List[Tuple[bytes, Tuple]] = []
        for job in self._outstanding.values():
            if job.handle is not None:
                job.handle.cancel()
            lost.append((job.key, job.metadata))
        self._outstanding.clear()
        self._busy_until = self.queue.now + restart_delay_s
        for key, metadata in lost:
            self._lose(key, metadata)

        def restart() -> None:
            self.down = False
            if self.on_restart is not None:
                self.on_restart()

        self.queue.schedule_in(restart_delay_s, restart, PRIO_INTERNAL)
        return lost

    def stall(self, duration_s: float) -> None:
        """The CPU freezes for ``duration_s`` (GC pause, PCI-E contention):
        nothing is lost, but every outstanding completion slips by the
        window and newly submitted jobs queue behind it."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.down or duration_s == 0.0:
            return
        self.stalls += 1
        if self._m_stalls is not None:
            self._m_stalls.value += 1.0
        self._busy_until = max(self._busy_until, self.queue.now) + duration_s
        for job_id, job in self._outstanding.items():
            handle = job.handle
            if handle is None or handle.cancelled:
                continue
            handle.cancel()
            when = handle.time + duration_s

            def fire(jid: int = job_id, j: _Job = job) -> None:
                self._complete(jid, j)

            job.handle = self.queue.schedule(when, fire, PRIO_INTERNAL)
