"""Switch-CPU model: slow-path connection learning and insertion (§4.1, §5.2).

The switch's embedded x86 CPU drains learning-filter batches, runs the
cuckoo BFS to pick slots, and writes entries into ConnTable over PCI-E.
The paper measures ~200 K insertions/second as achievable; that rate, not
the data plane, is what creates *pending connections* and hence the whole
PCC problem.

The CPU is modelled as a single-server FIFO: entries complete at
``1/insertion_rate`` intervals, starting when the CPU is free.  Redirected
false-positive TCP SYNs are handled as separate jobs with a fixed software
delay (a few milliseconds, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..asicsim.learning_filter import LearnBatch, LearnEvent
from ..netsim.events import EventQueue
from ..netsim.simulator import PRIO_INTERNAL
from ..obs.metrics import LATENCY_BUCKETS_S, Scope

#: Callback invoked when the CPU finishes installing one connection:
#: ``(key, metadata, now)``.
InstallCallback = Callable[[bytes, Tuple], None]


class SwitchCpu:
    """Single-core switch CPU processing ConnTable insertions in FIFO order."""

    def __init__(
        self,
        queue: EventQueue,
        insertion_rate_per_s: float,
        on_installed: InstallCallback,
        metrics: Optional[Scope] = None,
    ) -> None:
        if insertion_rate_per_s <= 0:
            raise ValueError("insertion rate must be positive")
        self.queue = queue
        self.insertion_rate_per_s = insertion_rate_per_s
        self.on_installed = on_installed
        # -inf: the CPU has never been busy (the simulation clock may start
        # negative during warm-up replay).
        self._busy_until = float("-inf")
        self.submitted = 0
        self.completed = 0
        self.batches = 0
        if metrics is None:
            self._m_submitted = self._m_installed = None
            self._m_batches = self._m_queue_delay = None
        else:
            self._m_submitted = metrics.counter(
                "jobs_submitted_total", "insertion jobs queued on the CPU"
            )
            self._m_installed = metrics.counter(
                "installs_total", "ConnTable installs completed"
            )
            self._m_batches = metrics.counter(
                "batches_total", "learning-filter batches accepted"
            )
            self._m_queue_delay = metrics.histogram(
                "batch_queueing_delay_s",
                buckets=LATENCY_BUCKETS_S,
                quantiles=(0.5, 0.99),
                help="wait before the CPU starts a newly submitted batch",
            )
            # Re-registering after a rebind re-points the callbacks at the
            # new CPU instance; counters are shared and keep accumulating.
            metrics.gauge("backlog", "entries submitted but not installed").set_function(
                lambda: float(self.backlog)
            )
            metrics.gauge(
                "queueing_delay_s", "time until a job submitted now would start"
            ).set_function(self.queueing_delay)

    @property
    def per_entry_s(self) -> float:
        return 1.0 / self.insertion_rate_per_s

    @property
    def backlog(self) -> int:
        """Entries submitted but not yet installed."""
        return self.submitted - self.completed

    def queueing_delay(self) -> float:
        """Time until the CPU would start a job submitted now."""
        return max(0.0, self._busy_until - self.queue.now)

    def submit_batch(self, batch: LearnBatch) -> None:
        """Enqueue a learning-filter batch; entries complete sequentially."""
        self.batches += 1
        start = max(self.queue.now, self._busy_until)
        if self._m_batches is not None:
            self._m_batches.value += 1.0
            self._m_queue_delay.observe(max(0.0, start - self.queue.now))
        for event in batch.events:
            start += self.per_entry_s
            self._schedule_install(event.key, event.metadata, start)
        self._busy_until = start

    def submit_one(self, key: bytes, metadata: Tuple, extra_delay_s: float = 0.0) -> None:
        """Enqueue a single out-of-band job (e.g. a redirected SYN fix)."""
        start = max(self.queue.now, self._busy_until) + extra_delay_s + self.per_entry_s
        self._schedule_install(key, metadata, start)
        self._busy_until = start

    def _schedule_install(self, key: bytes, metadata: Tuple, when: float) -> None:
        self.submitted += 1
        if self._m_submitted is not None:
            self._m_submitted.value += 1.0

        def fire() -> None:
            self.completed += 1
            if self._m_installed is not None:
                self._m_installed.value += 1.0
            self.on_installed(key, metadata)

        self.queue.schedule(when, fire, PRIO_INTERNAL)
