"""DIP health monitoring on the switch (§7, "Handle DIP failures").

Each SilkRoad switch health-checks its DIPs with BFD-style probes the ASIC
can offload (the paper budgets ~800 Kb/s for 10 K DIPs at a 10-second
interval).  :class:`HealthMonitor` drives a
:class:`~repro.deploy.failures.BfdProber` off the simulation event queue:
every interval it probes each monitored DIP against a liveness oracle
(fault injection in tests/simulations) and, on detection, removes the DIP
from its pool through the switch's normal update path — so the removal
gets the full 3-step PCC treatment like any operator update.

Recovered DIPs are re-added after ``recovery_checks`` consecutive good
probes, completing the remove/re-add cycle that version reuse optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..deploy.failures import BfdProber, health_check_bandwidth_bps
from ..netsim.packet import DirectIP, VirtualIP
from ..netsim.simulator import PRIO_INTERNAL
from ..netsim.updates import RootCause, UpdateEvent, UpdateKind

#: A liveness oracle: returns True if the DIP answers its probe now.
LivenessOracle = Callable[[DirectIP, float], bool]


def always_alive(_dip: DirectIP, _now: float) -> bool:
    return True


@dataclass
class _DipState:
    vips: Set[VirtualIP] = field(default_factory=set)
    removed: bool = False
    good_streak: int = 0


class HealthMonitor:
    """Probes a switch's DIPs and converts failures into pool updates."""

    def __init__(
        self,
        switch,
        oracle: LivenessOracle = always_alive,
        interval_s: float = 10.0,
        detect_multiplier: int = 3,
        recovery_checks: int = 2,
        probe_bytes: int = 100,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        if recovery_checks <= 0:
            raise ValueError("recovery_checks must be positive")
        self.switch = switch
        self.oracle = oracle
        self.interval_s = interval_s
        self.recovery_checks = recovery_checks
        self.probe_bytes = probe_bytes
        self.prober = BfdProber(interval_s=interval_s, detect_multiplier=detect_multiplier)
        self._dips: Dict[DirectIP, _DipState] = {}
        self._running = False
        self.probes_sent = 0
        self.failures_detected = 0
        self.recoveries = 0

    # ------------------------------------------------------------------

    def watch_vip(self, vip: VirtualIP) -> None:
        """Monitor every DIP currently pooled for ``vip``."""
        pools = self.switch.dip_pools
        version = pools.current_version(vip)
        for dip in pools.pool(vip, version).slots:
            self._dips.setdefault(dip, _DipState()).vips.add(vip)

    def watch_all(self) -> None:
        for vip in self.switch.vip_table.vips():
            self.watch_vip(vip)

    def start(self) -> None:
        """Begin the periodic probe cycle on the switch's event queue."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return

        def fire() -> None:
            self._probe_cycle()
            self._schedule_next()

        self.switch.queue.schedule_in(self.interval_s, fire, PRIO_INTERNAL)

    # ------------------------------------------------------------------

    def _probe_cycle(self) -> None:
        now = self.switch.queue.now
        for dip, state in list(self._dips.items()):
            self.probes_sent += 1
            alive = self.oracle(dip, now)
            went_down = self.prober.observe(dip, responded=alive)
            if went_down is not None and not state.removed:
                self._remove(dip, state, now)
            elif alive and state.removed:
                state.good_streak += 1
                if state.good_streak >= self.recovery_checks:
                    self._readd(dip, state, now)
            elif not alive:
                state.good_streak = 0

    def _remove(self, dip: DirectIP, state: _DipState, now: float) -> None:
        self.failures_detected += 1
        state.removed = True
        state.good_streak = 0
        for vip in state.vips:
            pools = self.switch.dip_pools
            current = pools.pool(vip, pools.current_version(vip))
            if dip in current and len(current) > 1:
                self.switch.apply_update(
                    UpdateEvent(now, vip, UpdateKind.REMOVE, dip, RootCause.FAILURE)
                )

    def _readd(self, dip: DirectIP, state: _DipState, now: float) -> None:
        self.recoveries += 1
        state.removed = False
        for vip in state.vips:
            pools = self.switch.dip_pools
            current = pools.pool(vip, pools.current_version(vip))
            if dip not in current:
                self.switch.apply_update(
                    UpdateEvent(now, vip, UpdateKind.ADD, dip, RootCause.FAILURE)
                )

    # ------------------------------------------------------------------

    @property
    def monitored_dips(self) -> int:
        return len(self._dips)

    def bandwidth_bps(self) -> float:
        """Probe bandwidth this monitor costs the switch (§7 arithmetic)."""
        return health_check_bandwidth_bps(
            self.monitored_dips, self.interval_s, self.probe_bytes
        )

    def detection_time_s(self) -> float:
        return self.prober.detection_time_s()
