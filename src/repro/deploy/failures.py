"""Failure handling: DIP health checks and switch failures (§7).

* **DIP failures** — each SilkRoad switch health-checks its DIPs with
  BFD-style probes the ASIC can offload.  The paper's arithmetic: probing
  10 K DIPs every 10 s with 100-byte packets costs ~800 Kb/s of switch
  bandwidth (:func:`health_check_bandwidth_bps`).  On detection the DIP is
  removed from its pool; resilient hashing can keep the same version.

* **Switch failures** — flows of a failed SilkRoad switch re-ECMP to
  surviving switches, which share the same latest VIPTable.  Connections
  pinned to the *latest* pool version re-hash identically and keep PCC;
  connections pinned to an *older* version lose their ConnTable state and
  may break — the same exposure an SLB failure has.
  :func:`switch_failure_breakage` quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..netsim.packet import DirectIP


def health_check_bandwidth_bps(
    num_dips: int, interval_s: float = 10.0, probe_bytes: int = 100
) -> float:
    """Bandwidth one switch spends probing its DIPs.

    The paper's example: 10 K DIPs / 10 s / 100 B -> ~800 Kb/s.
    """
    if num_dips < 0:
        raise ValueError("num_dips must be non-negative")
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    if probe_bytes <= 0:
        raise ValueError("probe size must be positive")
    return num_dips / interval_s * probe_bytes * 8.0


@dataclass
class BfdProber:
    """Per-switch BFD-offload health checker.

    Tracks consecutive probe misses per DIP; ``detect_multiplier`` misses
    declare the DIP down (RFC 5880 semantics).
    """

    interval_s: float = 10.0
    detect_multiplier: int = 3
    _misses: Dict[DirectIP, int] = field(default_factory=dict)
    _down: Set[DirectIP] = field(default_factory=set)

    def observe(self, dip: DirectIP, responded: bool) -> Optional[DirectIP]:
        """Record one probe result; returns the DIP if it just went down."""
        if responded:
            self._misses[dip] = 0
            self._down.discard(dip)
            return None
        misses = self._misses.get(dip, 0) + 1
        self._misses[dip] = misses
        if misses >= self.detect_multiplier and dip not in self._down:
            self._down.add(dip)
            return dip
        return None

    def is_down(self, dip: DirectIP) -> bool:
        return dip in self._down

    def detection_time_s(self) -> float:
        """Worst-case detection latency."""
        return self.interval_s * self.detect_multiplier


def switch_failure_breakage(
    connections_per_version: Dict[int, int], latest_version: int
) -> float:
    """Fraction of a failed switch's connections that may break PCC.

    Connections on the latest version re-hash identically at the surviving
    switches (same VIPTable); only connections pinned to older versions are
    exposed (their ConnTable state is lost with the switch).
    """
    total = sum(connections_per_version.values())
    if total == 0:
        return 0.0
    exposed = sum(
        count
        for version, count in connections_per_version.items()
        if version != latest_version
    )
    return exposed / total


def expected_breakage_after_failover(
    connections_per_version: Dict[int, int],
    latest_version: int,
    remap_probability: float,
) -> float:
    """Expected broken fraction: exposed connections break only if the
    surviving switches' hash actually lands them elsewhere."""
    if not 0.0 <= remap_probability <= 1.0:
        raise ValueError("remap_probability must be in [0, 1]")
    return switch_failure_breakage(connections_per_version, latest_version) * remap_probability
