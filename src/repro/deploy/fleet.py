"""Fleet failure domain: health-checked failover with attributable PCC.

:mod:`repro.deploy.failover` models §7's switch-failure story with an
omniscient oracle — ``fail_switch`` fires exactly when scheduled and flows
move instantly.  Real fleets do not work that way: a controller discovers
switch health through *heartbeat probes*, detection has latency, and every
flow hashed to a dead switch blackholes until suspicion crosses the
threshold.  This module builds that control plane:

* :class:`FleetController` probes every switch each
  ``heartbeat_interval_s``; ``suspicion_threshold`` consecutive misses
  declare the switch down (detection latency = interval × threshold).
  Until then the fabric keeps hashing flows into the void.
* **Declare-down** removes the switch from every VIP's resilient-hash
  group and re-homes its connections to the survivors — re-hashed flows
  keep PCC iff they were on the latest pool version (§7 semantics), and
  every move is recorded with its cause.
* **Recovery / rejoin** boots a *fresh* switch instance that must re-sync
  its VIPTable from the fleet's current pools (state re-learn) before the
  controller re-admits it to ECMP after ``rejoin_threshold`` clean probes.
* **PCC-safe VIP reassignment** (:meth:`FleetSilkRoad.reassign_vip`)
  mirrors the 3-step ``pcc_update`` shape at fleet scope:
  re-announce on the target, drain the hash group after
  ``announce_delay_s``, then redirect the stragglers after
  ``drain_window_s`` — flows that arrived inside the window are the
  *mid-reassignment race* population.
* **Graceful degradation**: with a ``conn_budget`` (per-switch ConnTable
  allowance, same budget notion as :mod:`repro.deploy.assignment`), a
  failover that would overflow a survivor sheds whole VIPs
  lowest-priority-first instead of corrupting table state.

Every decision change a connection can experience is recorded at the
moment the fleet causes it, so :func:`audit_fleet` can attribute **every**
PCC violation and every dropped connection to exactly one cause — the
acceptance bar is a zero-size unattributed bucket:

=========================  ====================================================
``version_pinned_rehash``  a fleet-initiated move re-hashed the flow under the
                           current pool (breaks iff it was version-pinned, §7)
``blackhole_detection``    packets met a dead or not-yet-resynced switch before
                           detection/rejoin completed
``overflow_shed``          the flow's VIP was shed to keep survivors within
                           their ConnTable budget
``reassignment_race``      the flow arrived during a reassignment's drain
                           window and was redirected at the final step
``switch_local``           the single-switch fault machinery (slow-path loss,
                           ConnTable overflow, Bloom FP adoption) already
                           predicted it — PR 3's per-switch attribution
=========================  ====================================================

Everything runs on the shared deterministic event queue; given equal
seeds, two fleet runs are bit-identical (the chaos CLI asserts equal
registry fingerprints across runs and worker counts).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from heapq import heappop
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..asicsim.hashing import mix64
from ..baselines.ecmp import ResilientHashTable
from ..core.config import SilkRoadConfig
from ..core.silkroad import SilkRoadSwitch
from ..core.verify import AuditReport, audit_switch
from ..netsim.events import EventQueue
from ..netsim.flows import Connection
from ..netsim.packet import DirectIP, VirtualIP
from ..netsim.simulator import LoadBalancer, PRIO_ARRIVAL, PRIO_INTERNAL
from ..netsim.updates import UpdateEvent, UpdateKind
from ..obs.metrics import MetricRegistry
from .failover import _SwitchId

#: Attribution classes for fleet-caused decision changes.
CAUSE_REHASH = "version_pinned_rehash"
CAUSE_BLACKHOLE = "blackhole_detection"
CAUSE_SHED = "overflow_shed"
CAUSE_RACE = "reassignment_race"
CAUSE_SWITCH_LOCAL = "switch_local"
FLEET_CAUSES: Tuple[str, ...] = (
    CAUSE_REHASH,
    CAUSE_BLACKHOLE,
    CAUSE_SHED,
    CAUSE_RACE,
)


@dataclass(frozen=True)
class FleetConfig:
    """Control-plane knobs of the fleet failure domain."""

    #: seconds between controller probe rounds.
    heartbeat_interval_s: float = 0.25
    #: consecutive missed probes before a switch is declared down.
    suspicion_threshold: int = 3
    #: consecutive clean probes before a recovered switch rejoins ECMP.
    rejoin_threshold: int = 2
    #: slots of each per-VIP resilient hash group.
    ecmp_slots: int = 128
    #: switches announcing each VIP (None = every switch, the §5.3 default).
    replication: Optional[int] = None
    #: per-switch ConnTable allowance; None disables overflow shedding.
    conn_budget: Optional[int] = None
    #: reassignment step 1→2 latency (announce propagation).
    announce_delay_s: float = 0.05
    #: reassignment step 2→3 latency (drain window).
    drain_window_s: float = 0.5

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be >= 1")
        if self.rejoin_threshold < 1:
            raise ValueError("rejoin_threshold must be >= 1")
        if self.replication is not None and self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.conn_budget is not None and self.conn_budget < 1:
            raise ValueError("conn_budget must be >= 1")
        if self.announce_delay_s < 0 or self.drain_window_s < 0:
            raise ValueError("reassignment latencies must be non-negative")

    @property
    def detection_latency_s(self) -> float:
        """Worst-case blackhole window after a silent crash."""
        return self.heartbeat_interval_s * self.suspicion_threshold


@dataclass(frozen=True)
class FleetPartition:
    """Which slice of the fleet this replica materializes.

    The partitioned runner gives every worker the *whole* deterministic
    control plane — heartbeats, declare-down, re-homes, reassignment steps
    and shedding are replicated computation over replicated state — but
    only the switches in ``owned`` simulate a data plane; the rest are
    :class:`_PhantomSwitch` stand-ins.  ``worker_id == 0`` is the primary:
    it alone materializes the fleet-scope gauges, the fleet recorder and
    the authoritative cause maps, so per-worker registries, timelines and
    recorders stay pairwise disjoint and merge to the same bits for every
    worker count.
    """

    owned: Tuple[int, ...]
    worker_id: int
    num_workers: int

    def __post_init__(self) -> None:
        if not self.owned:
            raise ValueError("a partition must own at least one switch")
        if not 0 <= self.worker_id < self.num_workers:
            raise ValueError("worker_id out of range")

    @property
    def primary(self) -> bool:
        return self.worker_id == 0


def partition_epoch_length(fleet_config: FleetConfig) -> float:
    """Barrier period of the partitioned runner.

    The only couplings that carry one switch's state into another's are
    controller heartbeat rounds (probe results → declare-down/rejoin), the
    reassignment announce step and the drain window; their minimum bounds
    how far replicas could drift apart before an exchanged digest would
    notice, so epochs never exceed it.
    """
    bounds = [fleet_config.heartbeat_interval_s]
    if fleet_config.announce_delay_s > 0:
        bounds.append(fleet_config.announce_delay_s)
    if fleet_config.drain_window_s > 0:
        bounds.append(fleet_config.drain_window_s)
    return min(bounds)


#: Journal codes folded into the replica-agreement digest, one per
#: cross-partition event class.
_J_CRASH = 2
_J_RESTART = 3
_J_PARTITION = 4
_J_HEAL = 5
_J_HB_LOSS = 6
_J_DOWN = 7
_J_REJOIN = 8
_J_RESYNC = 9
_J_HANDOFF = 10
_J_SHED = 11
_J_RA_ANNOUNCE = 12
_J_RA_DRAIN = 13
_J_RA_REDIRECT = 14
_J_RA_ABORT = 15


class _SwitchSlot:
    """One fleet position: the current switch instance plus health state."""

    __slots__ = (
        "switch",
        "generation",
        "dataplane_up",
        "partition_depth",
        "drop_probes",
        "synced",
        "in_ecmp",
        "missed",
        "ok_streak",
        "announced",
        "restart_handle",
    )

    def __init__(self, switch: SilkRoadSwitch) -> None:
        self.switch = switch
        self.generation = 0
        self.dataplane_up = True
        self.partition_depth = 0  # nested partitions stack
        self.drop_probes = 0  # probes the fault model will eat
        self.synced = True
        self.in_ecmp = True
        self.missed = 0
        self.ok_streak = 0
        self.announced: Set[VirtualIP] = set()  # membership only, never iterated
        self.restart_handle = None

    @property
    def reachable(self) -> bool:
        """Control-plane reachability (what a probe can observe)."""
        return self.dataplane_up and self.partition_depth == 0

    def serves(self, vip: VirtualIP) -> bool:
        """Can this slot's data plane forward for ``vip`` right now?

        A partitioned switch keeps forwarding (the partition severs the
        control plane: probes and updates); a crashed or freshly restarted
        instance that has not announced the VIP cannot.
        """
        return self.dataplane_up and vip in self.announced


class _PhantomSwitch:
    """Data-plane stand-in for a switch owned by another partition worker.

    The replicated control plane must interleave *identically* on every
    replica, so the phantom mirrors the real batch path's clock advance
    (fire internal events strictly before each arrival, then step
    ``queue.now`` to it) while simulating nothing and allocating nothing.
    ``resume_connection`` reports a miss; the fleet then calls
    ``on_connection_arrival`` (a no-op here) — neither branch touches
    fleet state, so owners and non-owners stay in lockstep.
    """

    __slots__ = ("name", "queue")

    materialized = False
    conn_table: Tuple[()] = ()
    at_risk_keys: frozenset = frozenset()
    overflow_keys: frozenset = frozenset()
    fp_adopted_keys: frozenset = frozenset()

    def __init__(self, name: str) -> None:
        self.name = name
        self.queue: Optional[EventQueue] = None

    def bind(self, queue: EventQueue) -> None:
        self.queue = queue

    def attach_recorder(self, recorder) -> None:
        pass

    def announce_vip(self, vip, dips) -> None:
        pass

    def on_connection_arrival(self, conn: Connection) -> None:
        pass

    def on_connection_batch(self, conns: Sequence[Connection]) -> None:
        queue = self.queue
        run_before = queue.run_until_before
        for conn in conns:
            start = conn.start
            run_before(start, PRIO_ARRIVAL)
            queue.now = start

    def on_connection_end(self, conn: Connection) -> None:
        pass

    def resume_connection(self, conn: Connection) -> bool:
        return False

    def apply_update(self, event: UpdateEvent) -> None:
        pass

    def finalize(self) -> None:
        pass


class FleetController:
    """Heartbeat prober + membership policy for a :class:`FleetSilkRoad`."""

    def __init__(self, fleet: "FleetSilkRoad") -> None:
        self.fleet = fleet
        self._stalled_until = float("-inf")
        self.probes_sent = 0
        self.probes_missed = 0
        self.stalled_ticks = 0

    def start(self, queue: EventQueue) -> None:
        cfg = self.fleet.fleet_config
        queue.schedule(
            queue.now + cfg.heartbeat_interval_s, self._tick, PRIO_INTERNAL
        )

    def stall(self, duration_s: float) -> None:
        """Suspend detection (the DETECTION_DELAY fault): probes pause."""
        now = self.fleet.queue.now
        self._stalled_until = max(self._stalled_until, now + duration_s)

    def _tick(self) -> None:
        fleet = self.fleet
        queue = fleet.queue
        cfg = fleet.fleet_config
        now = queue.now
        if now < self._stalled_until:
            self.stalled_ticks += 1
        else:
            for index, slot in enumerate(fleet._slots):
                self.probes_sent += 1
                up = slot.reachable
                if up and slot.drop_probes > 0:
                    slot.drop_probes -= 1
                    up = False  # the probe itself was lost
                if up:
                    slot.missed = 0
                    slot.ok_streak += 1
                    if slot.in_ecmp and not slot.synced:
                        # Reachable but stale: it missed updates while
                        # unreachable and must re-learn before serving.
                        fleet.declare_down(index, reason="stale")
                    elif not slot.in_ecmp and slot.ok_streak >= cfg.rejoin_threshold:
                        fleet.rejoin(index)
                else:
                    slot.ok_streak = 0
                    slot.missed += 1
                    self.probes_missed += 1
                    if slot.in_ecmp and slot.missed >= cfg.suspicion_threshold:
                        fleet.declare_down(index, reason="unresponsive")
        queue.schedule(now + cfg.heartbeat_interval_s, self._tick, PRIO_INTERNAL)


class FleetSilkRoad(LoadBalancer):
    """A fleet of SilkRoad switches under heartbeat-driven membership."""

    def __init__(
        self,
        num_switches: int = 4,
        config: SilkRoadConfig = SilkRoadConfig(),
        fleet_config: FleetConfig = FleetConfig(),
        name: str = "fleet-silkroad",
        priorities: Optional[Dict[VirtualIP, int]] = None,
        partition: Optional[FleetPartition] = None,
    ) -> None:
        if num_switches <= 0:
            raise ValueError("need at least one switch")
        self.name = name
        self.config = config
        self.fleet_config = fleet_config
        self.partition = partition
        if partition is None:
            self._owned = frozenset(range(num_switches))
            self._primary = True
        else:
            owned = frozenset(partition.owned)
            if not owned <= frozenset(range(num_switches)):
                raise ValueError("partition owns switches outside the fleet")
            self._owned = owned
            self._primary = partition.primary
        #: per-owned-switch flight recorders (partitioned runs only).
        self._slot_recorders: Dict[int, "FlightRecorder"] = {}  # noqa: F821
        # Replica-agreement journal: every cross-partition event class is
        # folded in at the instant it happens; compared at epoch barriers.
        self._journal_hash = 0
        self._journal_count = 0
        #: keys parked on an aborted reassignment's dead target, so the
        #: detection re-home attributes them as reassignment races.
        self._aborted_races: Set[bytes] = set()
        self._slots: List[_SwitchSlot] = [
            _SwitchSlot(self._make_switch(i, 0)) for i in range(num_switches)
        ]
        self._ids = [_SwitchId(i) for i in range(num_switches)]
        self._retired: List[Tuple[int, int, SilkRoadSwitch]] = []
        # Per-VIP resilient hash group over the VIP's live announcers.
        self._tables: Dict[VirtualIP, ResilientHashTable] = {}
        # Which slots are supposed to announce each VIP (rejoin targets).
        self._assignment: Dict[VirtualIP, List[int]] = {}
        self._vip_order: List[VirtualIP] = []
        # The fleet's authoritative current pool per VIP, mirrored from the
        # update stream; resyncs announce from here.
        self._pools: Dict[VirtualIP, List[DirectIP]] = {}
        self._priorities: Dict[VirtualIP, int] = dict(priorities or {})
        self._owner: Dict[bytes, int] = {}  # -1 = registered but unserved
        self._conns: Dict[bytes, Connection] = {}
        # Attribution maps, written at the instant the fleet causes the
        # decision change; membership-only, never iterated for events.
        self._move_cause: Dict[bytes, str] = {}
        self._drop_cause: Dict[bytes, str] = {}
        self._shed: Dict[VirtualIP, None] = {}  # insertion-ordered set
        #: in-flight reassignments: vip -> (t0, from_index, to_index)
        self._reassigning: Dict[VirtualIP, Tuple[float, int, int]] = {}
        self.controller = FleetController(self)
        self.recorder = None

        # Counters (mirrored into the registry as callback gauges).
        self.crashes = 0
        self.restarts = 0
        self.partitions = 0
        self.heals = 0
        self.detections = 0
        self.false_detections = 0
        self.rejoins = 0
        self.resyncs = 0
        self.handoffs = 0
        self.blackholed_arrivals = 0
        self.blackholed_existing = 0
        self.unserved_arrivals = 0
        self.shed_arrivals = 0
        self.vips_shed = 0
        self.shed_connections = 0
        self.reassignments_started = 0
        self.reassignments_completed = 0
        self.reassignments_skipped = 0
        self.reassignments_aborted = 0
        self.updates_missed = 0

        # Fleet-scope gauges live on the primary replica only; per-switch
        # gauges live on the owner.  Partitioned partial registries are
        # therefore pairwise disjoint and their merge is worker-count
        # invariant (a serial fleet is its own primary and owns everything).
        self.metrics = MetricRegistry(labels={"fleet": name})
        if self._primary:
            scope = self.metrics.scope("fleet")
            for counter in (
                "crashes",
                "restarts",
                "partitions",
                "heals",
                "detections",
                "false_detections",
                "rejoins",
                "resyncs",
                "handoffs",
                "blackholed_arrivals",
                "blackholed_existing",
                "unserved_arrivals",
                "shed_arrivals",
                "vips_shed",
                "shed_connections",
                "reassignments_started",
                "reassignments_completed",
                "reassignments_skipped",
                "reassignments_aborted",
                "updates_missed",
            ):
                scope.gauge(counter).set_function(
                    lambda c=counter: float(getattr(self, c))
                )
            scope.gauge("switches_in_ecmp").set_function(
                lambda: float(sum(1 for s in self._slots if s.in_ecmp))
            )
            scope.gauge("switches_up").set_function(
                lambda: float(sum(1 for s in self._slots if s.dataplane_up))
            )
        for i in sorted(self._owned):
            sw_scope = self.metrics.scope(f"sw{i}")
            sw_scope.gauge("dataplane_up").set_function(
                lambda i=i: 1.0 if self._slots[i].dataplane_up else 0.0
            )
            sw_scope.gauge("in_ecmp").set_function(
                lambda i=i: 1.0 if self._slots[i].in_ecmp else 0.0
            )
            sw_scope.gauge("conn_entries").set_function(
                lambda i=i: float(len(self._slots[i].switch.conn_table))
            )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def announce_vip(self, vip: VirtualIP, dips: Sequence[DirectIP]) -> None:
        if vip in self._assignment:
            raise ValueError(f"VIP already announced: {vip}")
        n = len(self._slots)
        rank = len(self._vip_order)
        replication = self.fleet_config.replication
        width = n if replication is None else min(replication, n)
        indices = sorted({(rank + j) % n for j in range(width)})
        self._vip_order.append(vip)
        self._assignment[vip] = indices
        self._pools[vip] = list(dips)
        self._priorities.setdefault(vip, rank)
        for index in indices:
            slot = self._slots[index]
            slot.switch.announce_vip(vip, dips)
            slot.announced.add(vip)
        self._tables[vip] = ResilientHashTable(
            [self._ids[i] for i in indices], num_slots=self.fleet_config.ecmp_slots
        )

    def bind(self, queue: EventQueue) -> None:
        super().bind(queue)
        for slot in self._slots:
            slot.switch.bind(queue)
        self.controller.start(queue)

    def attach_recorder(self, recorder) -> None:
        self.recorder = recorder
        for slot in self._slots:
            slot.switch.attach_recorder(recorder)

    def attach_partition_recorders(self, capacity: int) -> None:
        """Partitioned recording: one ring per owned switch (source
        ``sw<i>``) plus, on the primary replica only, a fleet ring.

        A :class:`~repro.obs.recorder.FlightRecorder` sequences events per
        ring, and the merged dump orders by ``(t, source, seq)`` — with
        every source produced by exactly one worker, the merge is
        invariant to the partition width.
        """
        from ..obs.recorder import FlightRecorder

        if self._primary:
            self.recorder = FlightRecorder(capacity=capacity, source="fleet")
        for i in sorted(self._owned):
            recorder = FlightRecorder(capacity=capacity, source=f"sw{i}")
            self._slot_recorders[i] = recorder
            self._slots[i].switch.attach_recorder(recorder)

    def partition_recorders(self) -> List:
        """Every ring this replica owns, fleet ring first."""
        recorders = [] if self.recorder is None else [self.recorder]
        recorders.extend(
            self._slot_recorders[i] for i in sorted(self._slot_recorders)
        )
        return recorders

    def _record(self, name: str, **attrs) -> None:
        if self.recorder is not None:
            self.recorder.record(self.queue.now, "fleet", name, **attrs)

    def _make_switch(self, index: int, generation: int):
        suffix = f"-{index}" if generation == 0 else f"-{index}g{generation}"
        name = f"{self.name}{suffix}"
        if index in self._owned:
            return SilkRoadSwitch(self.config, name=name)
        return _PhantomSwitch(name)

    def _journal(self, code: int, a: int = 0, b: int = 0) -> None:
        """Fold one cross-partition event into the agreement journal.

        Every replica derives the same control-plane decisions from
        replicated state; the journal is the running proof, compared at
        every epoch barrier.  Only hash-seed-independent integers go in
        (switch indices, counts, ``key_hash`` values and the float
        clock's own hash).
        """
        folded = mix64(a ^ (code << 56), self._journal_hash)
        queue = getattr(self, "queue", None)
        now_bits = hash(queue.now) if queue is not None else 0
        self._journal_hash = mix64(b ^ now_bits, folded)
        self._journal_count += 1

    def epoch_digest(self) -> Tuple[int, ...]:
        """Replica-agreement digest exchanged at epoch barriers.

        Covers the journal (every membership / fault / re-home /
        reassignment event with its arguments and timestamp) plus the
        sizes and counters of all replicated control-plane state; any
        divergence between partition replicas shows up here within one
        epoch of the event that caused it.
        """
        return (
            self._journal_count,
            self._journal_hash,
            len(self._conns),
            len(self._tables),
            len(self._shed),
            len(self._reassigning),
            self.crashes,
            self.restarts,
            self.partitions,
            self.heals,
            self.detections,
            self.false_detections,
            self.rejoins,
            self.resyncs,
            self.handoffs,
            self.blackholed_arrivals,
            self.blackholed_existing,
            self.unserved_arrivals,
            self.shed_arrivals,
            self.vips_shed,
            self.shed_connections,
            self.reassignments_started,
            self.reassignments_completed,
            self.reassignments_skipped,
            self.reassignments_aborted,
            self.updates_missed,
            self.controller.probes_sent,
            self.controller.probes_missed,
        )

    # ------------------------------------------------------------------
    # LoadBalancer interface
    # ------------------------------------------------------------------

    def on_connection_arrival(self, conn: Connection) -> None:
        key = conn.key
        vip = conn.vip
        now = self.queue.now
        if vip in self._shed:
            # The VIP was shed for capacity: the fleet refuses the flow.
            self.shed_arrivals += 1
            conn.record_decision(now, None)
            self._drop_cause[key] = CAUSE_SHED
            return
        table = self._tables.get(vip)
        if table is None:
            # Every announcer is down: the VIP is withdrawn fleet-wide.
            self.unserved_arrivals += 1
            self._owner[key] = -1
            self._conns[key] = conn
            conn.record_decision(now, None)
            self._drop_cause.setdefault(key, CAUSE_BLACKHOLE)
            return
        index = table.lookup(key, conn.key_hash).index
        self._owner[key] = index
        self._conns[key] = conn
        slot = self._slots[index]
        if slot.serves(vip):
            slot.switch.on_connection_arrival(conn)
        else:
            # Crashed (or restarted and not yet resynced) but not yet
            # detected: the fabric still hashes here; packets blackhole.
            self.blackholed_arrivals += 1
            conn.record_decision(now, None)
            self._drop_cause.setdefault(key, CAUSE_BLACKHOLE)

    def on_connection_batch(self, conns: Sequence[Connection]) -> None:
        """Arrival chunk dispatch, re-grouped by owning switch.

        Same contract as :meth:`FabricSilkRoad.on_connection_batch`: a run
        of consecutive arrivals sorting strictly before the heap head
        cannot race a membership change (heartbeats, faults and
        reassignment steps are all heap events), so ownership is constant
        across the run and it forwards to the owner as one sub-batch.
        Arrivals with no serving owner (shed / unserved / blackholed) take
        the scalar path, which does the bookkeeping.
        """
        queue = self.queue
        heap = queue._heap
        run_before = queue.run_until_before
        i, n = 0, len(conns)
        while i < n:
            conn = conns[i]
            start = conn.start
            run_before(start, PRIO_ARRIVAL)
            queue.now = start
            index = self._batch_owner(conn)
            if index is None:
                self.on_connection_arrival(conn)
                i += 1
                continue
            while heap and heap[0][3].cancelled:
                heappop(heap)
            if heap:
                head_t, head_p = heap[0][0], heap[0][1]
            else:
                head_t, head_p = float("inf"), PRIO_ARRIVAL
            j = i + 1
            while j < n:
                later = conns[j]
                ls = later.start
                if ls > head_t or (ls == head_t and head_p < PRIO_ARRIVAL):
                    break
                if self._batch_owner(later) != index:
                    break
                j += 1
            sub = conns[i:j]
            owner = self._owner
            conn_map = self._conns
            for c in sub:
                owner[c.key] = index
                conn_map[c.key] = c
            self._slots[index].switch.on_connection_batch(sub)
            i = j

    def _batch_owner(self, conn: Connection) -> Optional[int]:
        """The serving owner for a batched arrival, or None for the scalar
        path (shed VIP, unserved VIP, or a blackholing owner)."""
        vip = conn.vip
        if vip in self._shed:
            return None
        table = self._tables.get(vip)
        if table is None:
            return None
        index = table.lookup(conn.key, conn.key_hash).index
        return index if self._slots[index].serves(vip) else None

    def on_connection_end(self, conn: Connection) -> None:
        key = conn.key
        index = self._owner.pop(key, None)
        self._conns.pop(key, None)
        if index is None or index < 0:
            return
        slot = self._slots[index]
        if slot.dataplane_up:
            # May be a fresh instance that never saw the flow (no-op) or
            # the instance that ended it at quiesce time (idempotent).
            slot.switch.on_connection_end(conn)

    def apply_update(self, event: UpdateEvent) -> None:
        vip = event.vip
        pool = self._pools.get(vip)
        if pool is None:
            return
        if event.kind is UpdateKind.REMOVE or event.kind is UpdateKind.DRAIN:
            if event.dip not in pool:
                return
            pool.remove(event.dip)
        elif event.kind is UpdateKind.WEIGHT:
            # Membership is unchanged; the weighted slot layout is a
            # per-switch pool-version property.  (A later re-announce —
            # e.g. a reassignment's step 1 — rebuilds the pool from this
            # membership mirror and therefore resets weights to 1.)
            if event.dip not in pool:
                return
        else:
            if event.dip in pool:
                return
            pool.append(event.dip)
        if vip in self._shed:
            return
        for index in self._assignment[vip]:
            slot = self._slots[index]
            if slot.reachable and slot.synced and vip in slot.announced:
                slot.switch.apply_update(event)
            else:
                # Unreachable or already stale: it missed this update and
                # must re-learn before it may serve again.
                slot.synced = False
                self.updates_missed += 1

    def finalize(self) -> None:
        for slot in self._slots:
            if slot.dataplane_up and slot.announced:
                slot.switch.finalize()

    # ------------------------------------------------------------------
    # Introspection (control API / serving mode)
    # ------------------------------------------------------------------

    def current_dips(self, vip: VirtualIP) -> Tuple[DirectIP, ...]:
        """The fleet's membership mirror for ``vip`` (announce order)."""
        pool = self._pools.get(vip)
        if pool is None:
            raise KeyError(f"VIP not announced: {vip}")
        return tuple(pool)

    def live_connections_on(self, vip: VirtualIP, dip: DirectIP) -> int:
        """Live connections mapped to ``(vip, dip)`` across the fleet."""
        return sum(
            slot.switch.live_connections_on(vip, dip)
            for slot in self._slots
            if slot.dataplane_up
        )

    def assigned_switches(self, vip: VirtualIP) -> List[int]:
        """Indices of the switches assigned to announce ``vip``."""
        indices = self._assignment.get(vip)
        if indices is None:
            raise KeyError(f"VIP not announced: {vip}")
        return list(indices)

    def switch_status(self) -> List[Dict[str, object]]:
        """Per-switch control-plane view (the serve API's fleet state)."""
        return [
            {
                "index": i,
                "dataplane_up": slot.dataplane_up,
                "in_ecmp": slot.in_ecmp,
                "synced": slot.synced,
                "announced_vips": len(slot.announced),
            }
            for i, slot in enumerate(self._slots)
        ]

    # ------------------------------------------------------------------
    # Fault surface (driven by repro.faults.fleet)
    # ------------------------------------------------------------------

    def inject_switch_crash(
        self, index: int, restart_after_s: Optional[float] = None
    ) -> None:
        """The switch silently dies; optionally reboots after a delay.

        Existing flows blackhole immediately (their state died with the
        switch); the fabric keeps hashing to the slot until the controller
        declares it down.
        """
        slot = self._slots[index]
        now = self.queue.now
        if slot.dataplane_up:
            self.crashes += 1
            quiesced = 0
            for key, conn in self._conns.items():
                if self._owner[key] != index or not conn.active_at(now):
                    continue
                # Silence the dead instance's state for this flow first so
                # its in-flight slow-path events stop recording decisions,
                # then mark the packet-level blackhole on the connection.
                slot.switch.on_connection_end(conn)
                conn.record_decision(now, None)
                self._drop_cause.setdefault(key, CAUSE_BLACKHOLE)
                quiesced += 1
            self.blackholed_existing += quiesced
            slot.dataplane_up = False
            slot.synced = False
            self._record("crash", switch=index, blackholed=quiesced)
            self._journal(_J_CRASH, index, quiesced)
        if slot.restart_handle is not None:
            slot.restart_handle.cancel()
            slot.restart_handle = None
        if restart_after_s is not None:
            slot.restart_handle = self.queue.schedule(
                now + restart_after_s,
                lambda: self._restart_switch(index),
                PRIO_INTERNAL,
            )

    def _restart_switch(self, index: int) -> None:
        slot = self._slots[index]
        if slot.dataplane_up:
            return
        self._fresh_instance(index)
        slot.dataplane_up = True
        slot.synced = False  # must re-learn the VIPTable before serving
        slot.restart_handle = None
        self.restarts += 1
        self._record("restart", switch=index, generation=slot.generation)
        self._journal(_J_RESTART, index, slot.generation)

    def _fresh_instance(self, index: int):
        """Replace the slot's instance with an empty one (state re-learn)."""
        slot = self._slots[index]
        self._retired.append((index, slot.generation, slot.switch))
        slot.generation += 1
        fresh = self._make_switch(index, slot.generation)
        if hasattr(self, "queue"):
            fresh.bind(self.queue)
        recorder = self._slot_recorders.get(index, self.recorder)
        if recorder is not None:
            fresh.attach_recorder(recorder)
        slot.switch = fresh
        slot.announced = set()
        return fresh

    def inject_partition(
        self, index: int, heal_after_s: Optional[float] = None
    ) -> None:
        """Sever the control plane: probes and updates stop reaching the
        switch, but its data plane keeps forwarding."""
        slot = self._slots[index]
        slot.partition_depth += 1
        self.partitions += 1
        self._record("partition", switch=index, depth=slot.partition_depth)
        self._journal(_J_PARTITION, index, slot.partition_depth)
        if heal_after_s is not None:
            self.queue.schedule(
                self.queue.now + heal_after_s,
                lambda: self._heal_partition(index),
                PRIO_INTERNAL,
            )

    def _heal_partition(self, index: int) -> None:
        slot = self._slots[index]
        if slot.partition_depth > 0:
            slot.partition_depth -= 1
            if slot.partition_depth == 0:
                self.heals += 1
                self._record("heal", switch=index)
                self._journal(_J_HEAL, index)

    def inject_heartbeat_loss(self, index: int, count: int) -> None:
        """The next ``count`` probes to this switch are lost in transit."""
        self._slots[index].drop_probes += count
        self._record("heartbeat_loss", switch=index, count=count)
        self._journal(_J_HB_LOSS, index, count)

    def request_reassign(self, vip_rank: int, target: int) -> None:
        """Operator-style reassignment request by rank (fault-plan entry)."""
        if not self._vip_order:
            return
        vip = self._vip_order[vip_rank % len(self._vip_order)]
        self.reassign_vip(vip, target % len(self._slots))

    # ------------------------------------------------------------------
    # Membership changes (called by the controller)
    # ------------------------------------------------------------------

    def declare_down(self, index: int, reason: str = "unresponsive") -> None:
        """Detection fired: remove the switch from every hash group and
        re-home its connections to the survivors."""
        slot = self._slots[index]
        if not slot.in_ecmp:
            return
        slot.in_ecmp = False
        slot.ok_streak = 0
        self.detections += 1
        if slot.reachable and reason != "stale":
            self.false_detections += 1
        self._record("declare_down", switch=index, reason=reason)
        self._journal(_J_DOWN, index, 1 if reason == "stale" else 0)
        # A reassignment whose *destination* just died can never finish its
        # drain/redirect steps safely: abort it before the membership sweep
        # below, so the source announcer stays in the hash group and the
        # VIP is not withdrawn while a healthy announcer still serves it.
        for vip in [
            v for v, token in self._reassigning.items() if token[2] == index
        ]:
            self._abort_reassignment(vip, reason="target-down")
        sid = self._ids[index]
        for vip in list(self._tables):
            table = self._tables[vip]
            if sid not in table.members:
                continue
            if len(table.members) == 1:
                # Last announcer: the VIP goes dark fleet-wide.
                del self._tables[vip]
            else:
                table.remove(sid)
        self._rehome_owned(index)

    def _rehome_owned(self, index: int) -> None:
        now = self.queue.now
        moving: List[Tuple[bytes, Connection, Optional[int]]] = []
        for key, conn in self._conns.items():
            if self._owner[key] != index or not conn.active_at(now):
                continue
            table = self._tables.get(conn.vip)
            target = (
                table.lookup(key, conn.key_hash).index if table is not None else None
            )
            moving.append((key, conn, target))
        self._shed_for_capacity(moving, now)
        for key, conn, target in moving:
            if conn.vip in self._shed:
                continue  # the shed already ended and attributed it
            if key in self._aborted_races:
                self._aborted_races.discard(key)
                cause = CAUSE_RACE
            else:
                cause = CAUSE_REHASH
            self._hand_off(key, conn, index, target, cause=cause)

    def _hand_off(
        self,
        key: bytes,
        conn: Connection,
        old_index: int,
        target: Optional[int],
        cause: str,
    ) -> None:
        """Move one flow between owners, recording what happened to it."""
        now = self.queue.now
        if target == old_index:
            return
        self._journal(
            _J_HANDOFF,
            conn.key_hash,
            (old_index + 2) * 1024 + (0 if target is None else target + 2),
        )
        if old_index >= 0:
            old_slot = self._slots[old_index]
            if old_slot.dataplane_up:
                # End it on the old instance so its state stops deciding;
                # a crashed owner was already quiesced at crash time.
                old_slot.switch.on_connection_end(conn)
        if target is None:
            # Nowhere to go: the VIP is unserved until an announcer rejoins.
            self._owner[key] = -1
            conn.record_decision(now, None)
            self._drop_cause.setdefault(key, CAUSE_BLACKHOLE)
            return
        self._owner[key] = target
        self._move_cause[key] = cause
        self.handoffs += 1
        slot = self._slots[target]
        if slot.serves(conn.vip):
            # If the target still holds the flow's ConnTable entry (it was
            # quiesced off this switch earlier and the entry hasn't aged
            # out), the packets hit it and keep the pinned version.
            # Otherwise the survivor sees new traffic: ConnTable miss,
            # current-version decision — §7's re-hash semantics.
            if not slot.switch.resume_connection(conn):
                slot.switch.on_connection_arrival(conn)
        else:
            # Cascading failure: the re-home target is itself dead and
            # undetected; the flow blackholes until that detection fires.
            conn.record_decision(now, None)
            self._drop_cause.setdefault(key, CAUSE_BLACKHOLE)

    def _shed_for_capacity(
        self,
        moving: List[Tuple[bytes, Connection, Optional[int]]],
        now: float,
    ) -> None:
        """Shed lowest-priority VIPs until every survivor fits its budget."""
        budget = self.fleet_config.conn_budget
        if budget is None:
            return
        while True:
            projected = [0] * len(self._slots)
            for key, conn in self._conns.items():
                owner = self._owner[key]
                if owner >= 0 and conn.active_at(now):
                    projected[owner] += 1
            for key, conn, target in moving:
                if target is not None and conn.vip not in self._shed:
                    projected[target] += 1
            over = None
            for idx, slot in enumerate(self._slots):
                if slot.in_ecmp and projected[idx] > budget:
                    over = idx
                    break
            if over is None:
                return
            contributing: Set[VirtualIP] = set()
            for key, conn in self._conns.items():
                if self._owner[key] == over and conn.active_at(now):
                    contributing.add(conn.vip)
            for key, conn, target in moving:
                if target == over:
                    contributing.add(conn.vip)
            candidates = [
                vip
                for vip in self._vip_order
                if vip in contributing and vip not in self._shed
            ]
            if not candidates:
                return  # nothing left to shed; the budget stays violated
            victim = min(
                candidates, key=lambda v: (self._priorities.get(v, 0), str(v))
            )
            self._shed_vip(victim, now)

    def _shed_vip(self, vip: VirtualIP, now: float) -> None:
        """Drop a VIP fleet-wide: every flow ends, new flows are refused."""
        self._shed[vip] = None
        self._tables.pop(vip, None)
        self._reassigning.pop(vip, None)
        dropped = 0
        for key in [k for k, c in self._conns.items() if c.vip == vip]:
            conn = self._conns.pop(key)
            owner = self._owner.pop(key)
            if owner >= 0:
                slot = self._slots[owner]
                if slot.dataplane_up:
                    slot.switch.on_connection_end(conn)
            if conn.active_at(now):
                conn.record_decision(now, None)
                self._drop_cause[key] = CAUSE_SHED
                dropped += 1
        self.vips_shed += 1
        self.shed_connections += dropped
        self._record("shed", vip=str(vip), dropped=dropped)
        self._journal(_J_SHED, self._vip_order.index(vip), dropped)

    def rejoin(self, index: int) -> None:
        """Detection cleared: re-sync state, then re-enter the hash groups.

        Order matters for PCC: the fresh instance announces every assigned
        VIP at its *current* pool (state re-learn) before any hash group
        can steer a flow to it — a stale announcement would hand out
        old-version decisions to re-hashed flows.
        """
        slot = self._slots[index]
        if slot.in_ecmp or not slot.dataplane_up:
            return
        if not slot.synced:
            self._resync(index)
        now = self.queue.now
        sid = self._ids[index]
        for vip in self._vip_order:
            if index not in self._assignment[vip] or vip in self._shed:
                continue
            table = self._tables.get(vip)
            if table is None:
                # The VIP went dark; it comes back to life on this switch.
                self._tables[vip] = table = ResilientHashTable(
                    [sid], num_slots=self.fleet_config.ecmp_slots
                )
                for key, conn in self._conns.items():
                    if conn.vip != vip or not conn.active_at(now):
                        continue
                    self._hand_off(
                        key, conn, self._owner[key], index, cause=CAUSE_REHASH
                    )
            elif sid not in table.members:
                table.add(sid)
                # Flows on the slots the rejoined switch stole move back —
                # exactly a failover in reverse.
                for key, conn in self._conns.items():
                    if conn.vip != vip or not conn.active_at(now):
                        continue
                    owner = self._owner[key]
                    if owner == index:
                        continue
                    if table.lookup(key, conn.key_hash).index == index:
                        self._hand_off(key, conn, owner, index, cause=CAUSE_REHASH)
        slot.in_ecmp = True
        slot.missed = 0
        self.rejoins += 1
        self._record("rejoin", switch=index, generation=slot.generation)
        self._journal(_J_REJOIN, index, slot.generation)

    def _resync(self, index: int) -> None:
        """State re-learn: announce every assigned VIP at its current pool."""
        slot = self._slots[index]
        if slot.announced:
            # A stale live instance (missed updates) cannot be patched
            # version-by-version from outside; it flushes and re-learns.
            self._fresh_instance(index)
        for vip in self._vip_order:
            if index not in self._assignment[vip] or vip in self._shed:
                continue
            slot.switch.announce_vip(vip, tuple(self._pools[vip]))
            slot.announced.add(vip)
        slot.synced = True
        self.resyncs += 1
        self._record("resync", switch=index, generation=slot.generation)
        self._journal(_J_RESYNC, index, slot.generation)

    # ------------------------------------------------------------------
    # PCC-safe VIP reassignment (3 steps at fleet scope)
    # ------------------------------------------------------------------

    def reassign_vip(self, vip: VirtualIP, to_index: int) -> bool:
        """Move a VIP announcement onto ``to_index``: announce → drain →
        redirect, mirroring the 3-step update's shape at fleet scope.

        Returns True when the reassignment was started.  The drain source
        is the VIP's lowest-indexed current announcer other than the
        target.  Flows arriving between the announce and the redirect are
        the mid-reassignment race population; the redirect attributes them
        as such.
        """
        to_slot = self._slots[to_index]
        if (
            vip in self._shed
            or vip in self._reassigning
            or vip not in self._assignment
            or not to_slot.dataplane_up
            or not to_slot.synced
            or vip in to_slot.announced
        ):
            self.reassignments_skipped += 1
            return False
        table = self._tables.get(vip)
        if table is None:
            self.reassignments_skipped += 1
            return False
        members = sorted(m.index for m in table.members)
        from_candidates = [m for m in members if m != to_index]
        if not from_candidates:
            self.reassignments_skipped += 1
            return False
        from_index = from_candidates[0]
        now = self.queue.now
        cfg = self.fleet_config
        # Step 1 — re-announce on the target at the current pool.  The
        # target starts receiving updates for the VIP from here on.
        to_slot.switch.announce_vip(vip, tuple(self._pools[vip]))
        to_slot.announced.add(vip)
        if to_index not in self._assignment[vip]:
            self._assignment[vip] = sorted(self._assignment[vip] + [to_index])
        self._reassigning[vip] = (now, from_index, to_index)
        self.reassignments_started += 1
        self._record("reassign_announce", vip=str(vip), src=from_index, dst=to_index)
        self._journal(
            _J_RA_ANNOUNCE, self._vip_order.index(vip), from_index * 1024 + to_index
        )
        self.queue.schedule(
            now + cfg.announce_delay_s,
            lambda: self._reassign_drain(vip),
            PRIO_INTERNAL,
        )
        return True

    def _reassign_drain(self, vip: VirtualIP) -> None:
        """Step 2 — swing the hash group: new flows stop landing on the
        source (its slots now belong to the target)."""
        token = self._reassigning.get(vip)
        if token is None:
            return  # shed or otherwise aborted mid-flight
        _, from_index, to_index = token
        table = self._tables.get(vip)
        if table is None:
            self._reassigning.pop(vip, None)
            return
        if not self._slots[to_index].serves(vip):
            # The destination died (or restarted un-synced) between the
            # announce and the drain: swinging the hash group now would
            # steer the VIP into a blackhole.  Abort; the source keeps it.
            self._abort_reassignment(vip, reason="target-lost")
            return
        to_id = self._ids[to_index]
        from_id = self._ids[from_index]
        if to_id not in table.members:
            table.add(to_id)
        if from_id in table.members and len(table.members) > 1:
            table.remove(from_id)
        self._record("reassign_drain", vip=str(vip), src=from_index, dst=to_index)
        self._journal(_J_RA_DRAIN, self._vip_order.index(vip))
        self.queue.schedule(
            self.queue.now + self.fleet_config.drain_window_s,
            lambda: self._reassign_redirect(vip),
            PRIO_INTERNAL,
        )

    def _reassign_redirect(self, vip: VirtualIP) -> None:
        """Step 3 — redirect the stragglers still pinned to the source."""
        token = self._reassigning.get(vip)
        if token is None:
            return
        t0, from_index, to_index = token
        if not self._slots[to_index].serves(vip):
            # Destination lost mid-drain-window and not yet detected:
            # redirecting the stragglers would end healthy flows into a
            # blackhole.  Abort instead — they stay pinned to the source.
            self._abort_reassignment(vip, reason="target-lost")
            return
        self._reassigning.pop(vip, None)
        now = self.queue.now
        table = self._tables.get(vip)
        moved = 0
        for key, conn in self._conns.items():
            if conn.vip != vip or not conn.active_at(now):
                continue
            if self._owner[key] != from_index:
                continue
            target = (
                table.lookup(key, conn.key_hash).index if table is not None else None
            )
            cause = CAUSE_RACE if conn.start >= t0 else CAUSE_REHASH
            self._hand_off(key, conn, from_index, target, cause=cause)
            moved += 1
        assigned = self._assignment.get(vip)
        if assigned and from_index in assigned and from_index != to_index:
            assigned.remove(from_index)
        self.reassignments_completed += 1
        self._record("reassign_redirect", vip=str(vip), src=from_index, moved=moved)
        self._journal(_J_RA_REDIRECT, self._vip_order.index(vip), moved)

    def _abort_reassignment(self, vip: VirtualIP, reason: str) -> None:
        """Roll an in-flight reassignment back onto its source.

        Invoked whenever the *destination* stops serving the VIP inside
        the 3-step window (crash, restart-without-resync) — from the step
        handlers themselves or from :meth:`declare_down` racing them.  The
        source announcer is restored to the hash group if the drain had
        already removed it, so flows stay on the source; arrivals that
        landed on the doomed destination during the window are remembered
        in ``_aborted_races`` and attributed as ``reassignment_race`` when
        the detection re-home moves them.
        """
        token = self._reassigning.pop(vip, None)
        if token is None:
            return
        t0, from_index, to_index = token
        now = self.queue.now
        from_slot = self._slots[from_index]
        table = self._tables.get(vip)
        if (
            table is not None
            and from_slot.serves(vip)
            and self._ids[from_index] not in table.members
        ):
            table.add(self._ids[from_index])
        races = 0
        for key, conn in self._conns.items():
            if (
                conn.vip == vip
                and self._owner[key] == to_index
                and conn.start >= t0
                and conn.active_at(now)
            ):
                self._aborted_races.add(key)
                races += 1
        # Roll back the announce step's assignment change: the destination
        # must not re-announce the VIP on a later rejoin as if the
        # cancelled reassignment had completed.
        assigned = self._assignment.get(vip)
        if assigned and to_index in assigned and from_index in assigned:
            assigned.remove(to_index)
        self.reassignments_aborted += 1
        self._record(
            "reassign_abort",
            vip=str(vip),
            src=from_index,
            dst=to_index,
            reason=reason,
            races=races,
        )
        self._journal(_J_RA_ABORT, self._vip_order.index(vip), races)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def instances(self) -> Iterator[Tuple[int, int, SilkRoadSwitch]]:
        """Every switch instance this fleet ever ran, retirees first."""
        for index, generation, switch in self._retired:
            yield index, generation, switch
        for index, slot in enumerate(self._slots):
            yield index, slot.generation, slot.switch

    def merged_registry(self) -> MetricRegistry:
        """Fleet metrics plus every instance's registry, prefix-folded."""
        from ..experiments.parallel import _fold_prefixed

        merged = MetricRegistry(labels={"fleet": self.name})
        _fold_prefixed(merged, self.metrics, "fleet")
        for index, generation, switch in self.instances():
            if not getattr(switch, "materialized", True):
                continue
            _fold_prefixed(merged, switch.metrics, f"inst.sw{index}g{generation}")
        return merged

    def fingerprint(self) -> str:
        return self.merged_registry().fingerprint()

    def in_ecmp_switches(self) -> List[int]:
        return [i for i, slot in enumerate(self._slots) if slot.in_ecmp]

    def alive_switches(self) -> List[int]:
        return [i for i, slot in enumerate(self._slots) if slot.dataplane_up]

    def shed_vips(self) -> List[VirtualIP]:
        return list(self._shed)

    def report(self) -> Dict[str, float]:
        report: Dict[str, float] = {
            "crashes": float(self.crashes),
            "restarts": float(self.restarts),
            "partitions": float(self.partitions),
            "heals": float(self.heals),
            "detections": float(self.detections),
            "false_detections": float(self.false_detections),
            "rejoins": float(self.rejoins),
            "resyncs": float(self.resyncs),
            "handoffs": float(self.handoffs),
            "blackholed_arrivals": float(self.blackholed_arrivals),
            "blackholed_existing": float(self.blackholed_existing),
            "unserved_arrivals": float(self.unserved_arrivals),
            "shed_arrivals": float(self.shed_arrivals),
            "vips_shed": float(self.vips_shed),
            "shed_connections": float(self.shed_connections),
            "reassignments_started": float(self.reassignments_started),
            "reassignments_completed": float(self.reassignments_completed),
            "reassignments_skipped": float(self.reassignments_skipped),
            "reassignments_aborted": float(self.reassignments_aborted),
            "updates_missed": float(self.updates_missed),
            "switches_in_ecmp": float(len(self.in_ecmp_switches())),
            "switches_up": float(len(self.alive_switches())),
            "probes_sent": float(self.controller.probes_sent),
            "probes_missed": float(self.controller.probes_missed),
        }
        live_entries = 0
        for index, slot in enumerate(self._slots):
            if not getattr(slot.switch, "materialized", True):
                continue
            entries = len(slot.switch.conn_table)
            if slot.dataplane_up:
                report[f"{slot.switch.name}_conn_entries"] = float(entries)
                live_entries += entries
        report["fleet_conn_entries"] = float(live_entries)
        return report


# ----------------------------------------------------------------------
# Fleet-wide audit
# ----------------------------------------------------------------------


@dataclass
class FleetAuditReport:
    """Structural audits of every instance + fleet-level attribution."""

    audit: AuditReport
    #: PCC violations by attributed cause (incl. ``switch_local``).
    violation_causes: Dict[str, int]
    #: dropped (ever-blackholed) connections by attributed cause.
    drop_causes: Dict[str, int]
    violations: int
    dropped: int
    unattributed_violations: int
    unattributed_drops: int

    @property
    def ok(self) -> bool:
        return (
            self.audit.ok
            and self.unattributed_violations == 0
            and self.unattributed_drops == 0
        )

    def __str__(self) -> str:
        causes = ", ".join(
            f"{name}={count}"
            for name, count in self.violation_causes.items()
            if count
        )
        return (
            f"fleet audit: {'ok' if self.ok else 'FAILED'} — "
            f"{self.violations} violations ({causes or 'none'}), "
            f"{self.dropped} dropped, "
            f"{self.unattributed_violations} unattributed violations, "
            f"{self.unattributed_drops} unattributed drops; "
            f"structural: {self.audit.checks_run} checks, "
            f"{len(self.audit.violations)} failures"
        )

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(str(self))

    def fingerprint(self) -> str:
        """Bit-exact digest of the attribution outcome.

        Cause buckets and structural violations are emitted in sorted
        order, so the digest of a partitioned run's merged report is
        invariant to the worker count (which only permutes merge order).
        """
        hasher = hashlib.sha256()
        hasher.update(f"checks={self.audit.checks_run}\n".encode())
        for violation in sorted(self.audit.violations):
            hasher.update(f"structural={violation}\n".encode())
        for name in sorted(self.violation_causes):
            hasher.update(
                f"violation.{name}={self.violation_causes[name]}\n".encode()
            )
        for name in sorted(self.drop_causes):
            hasher.update(f"drop.{name}={self.drop_causes[name]}\n".encode())
        hasher.update(
            f"totals={self.violations},{self.dropped},"
            f"{self.unattributed_violations},{self.unattributed_drops}\n".encode()
        )
        return hasher.hexdigest()


def collect_structural(fleet: FleetSilkRoad) -> Tuple[AuditReport, Set[bytes]]:
    """Structurally audit every materialized instance of ``fleet`` and
    union the per-switch attribution-prediction key sets.

    A partition replica contributes only the instances it owns; since
    every real instance exists on exactly one replica, merging the
    replicas' reports reconstructs the serial audit.
    """
    merged = AuditReport()
    predicted: Set[bytes] = set()
    for index, generation, switch in fleet.instances():
        if not getattr(switch, "materialized", True):
            continue
        merged.merge(audit_switch(switch), label=f"sw{index}g{generation}")
        predicted |= switch.at_risk_keys | switch.overflow_keys
        predicted |= switch.fp_adopted_keys
    return merged, predicted


def connection_outcomes(
    connections: Sequence[Connection],
) -> List[Tuple[bytes, Tuple[str, ...], bool, bool, float]]:
    """Compact per-connection outcome rows for cross-process merging.

    Each row is ``(key, sorted distinct DIP strings, ever_dropped,
    broken_by_removal, start)``.  Rows from different partition replicas
    merge per key by unioning the DIP sets and OR-ing the flags — a
    replica that never materialized the owning switch simply contributes
    the fleet-recorded share (blackholes, quiesces) of the decisions.
    """
    rows: List[Tuple[bytes, Tuple[str, ...], bool, bool, float]] = []
    for conn in connections:
        dips = {str(dip) for _t, dip in conn.decisions if dip is not None}
        rows.append(
            (
                conn.key,
                tuple(sorted(dips)),
                conn.ever_dropped,
                conn.broken_by_removal,
                conn.start,
            )
        )
    return rows


def attribute_outcomes(
    structural: AuditReport,
    outcomes: Iterable[Tuple[bytes, bool, bool]],
    move_causes: Dict[bytes, str],
    drop_cause_map: Dict[bytes, str],
    predicted: Set[bytes],
) -> FleetAuditReport:
    """Attribute ``(key, pcc_violated, ever_dropped)`` rows to causes.

    The attribution half of :func:`audit_fleet`, factored out so the
    partitioned runner can feed it merged outcome rows and a merged
    structural report instead of live objects.  ``structural`` is folded
    into the returned report (and mutated: the two fleet-level checks and
    any unattributed-bucket violations are appended to it).
    """
    violation_causes = {cause: 0 for cause in FLEET_CAUSES}
    violation_causes[CAUSE_SWITCH_LOCAL] = 0
    drop_causes = {cause: 0 for cause in FLEET_CAUSES}
    violations = dropped = 0
    unattributed_violations = unattributed_drops = 0
    for key, violated, was_dropped in outcomes:
        if violated:
            violations += 1
            cause = move_causes.get(key)
            if cause is not None:
                violation_causes[cause] += 1
            elif key in predicted:
                violation_causes[CAUSE_SWITCH_LOCAL] += 1
            else:
                unattributed_violations += 1
        if was_dropped:
            dropped += 1
            cause = drop_cause_map.get(key)
            if cause is not None:
                drop_causes[cause] += 1
            else:
                unattributed_drops += 1
    structural.checks_run += 2
    if unattributed_violations:
        structural.violations.append(
            f"[fleet] {unattributed_violations} PCC violations with no "
            "attributable cause"
        )
    if unattributed_drops:
        structural.violations.append(
            f"[fleet] {unattributed_drops} dropped connections with no "
            "attributable cause"
        )
    return FleetAuditReport(
        audit=structural,
        violation_causes=violation_causes,
        drop_causes=drop_causes,
        violations=violations,
        dropped=dropped,
        unattributed_violations=unattributed_violations,
        unattributed_drops=unattributed_drops,
    )


def audit_fleet(
    fleet: FleetSilkRoad, connections: Sequence[Connection]
) -> FleetAuditReport:
    """Audit every switch instance structurally, then attribute every PCC
    violation and every dropped connection to exactly one cause.

    Attribution is *by construction*: a connection's DIP decision can only
    change through (a) the single-switch fault machinery — whose keys the
    PR 3 auditor already collects per instance — or (b) a fleet-initiated
    move, shed, or blackhole, each recorded in the fleet's cause maps at
    the moment it happens.  Anything in neither bucket lands in the
    unattributed counters and fails the audit.
    """
    structural, predicted = collect_structural(fleet)
    rows = ((c.key, c.pcc_violated, c.ever_dropped) for c in connections)
    return attribute_outcomes(
        structural, rows, fleet._move_cause, fleet._drop_cause, predicted
    )
