"""Network-wide SilkRoad with switch failover (§5.3 deployment + §7).

Every switch of the deployment announces every VIP and keeps its *own*
ConnTable; the fabric ECMP-splits flows across the alive switches (with
resilient hashing, so only a failed switch's flows move).  When a switch
dies:

* its connections re-hash to surviving switches, which share the same
  latest VIPTable — so connections that were using the *latest* pool
  version map identically and keep PCC;
* connections pinned to an *older* version lose their ConnTable state with
  the switch and re-hash under the current pool — they may break, exactly
  like losing an SLB would (§7, "Handle switch failures").

A failed switch may later be *revived* (:meth:`FabricSilkRoad.revive_switch`):
the revived switch boots with empty tables and must re-sync its VIPTable to
the fleet's current pools before rejoining ECMP — updates pushed while it
was dead are tracked in ``missed_updates`` and resolved by the re-sync, so
a stale-version switch can never serve traffic.

:class:`FabricSilkRoad` implements the flow-level
:class:`~repro.netsim.simulator.LoadBalancer` interface so the failure
scenario replays under the standard harness, including the chunked-arrival
batched driver (arrival chunks are re-grouped per owning switch).

This is the *oracle-triggered* failure model (failures fire exactly when
scheduled, flows move instantly).  :mod:`repro.deploy.fleet` builds the
realistic control plane on top: heartbeat-based detection latency,
blackholes until detection, capacity-aware shedding and PCC auditing.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop
from typing import Dict, List, Sequence, Set, Tuple

from ..baselines.ecmp import ResilientHashTable
from ..core.config import SilkRoadConfig
from ..core.silkroad import SilkRoadSwitch
from ..netsim.events import EventQueue
from ..netsim.flows import Connection
from ..netsim.packet import DirectIP, VirtualIP
from ..netsim.simulator import LoadBalancer, PRIO_ARRIVAL, PRIO_INTERNAL
from ..netsim.updates import UpdateEvent, UpdateKind


@dataclass(frozen=True)
class _SwitchId:
    """A hashable stand-in so the resilient table can ECMP over switches."""

    index: int

    # ResilientHashTable hashes str(member); give it a stable name.
    def __str__(self) -> str:
        return f"switch-{self.index}"


class FabricSilkRoad(LoadBalancer):
    """A layer of SilkRoad switches behind fabric ECMP."""

    def __init__(
        self,
        num_switches: int = 4,
        config: SilkRoadConfig = SilkRoadConfig(),
        name: str = "fabric-silkroad",
        ecmp_slots: int = 256,
    ) -> None:
        if num_switches <= 0:
            raise ValueError("need at least one switch")
        self.name = name
        self.config = config
        self.switches: List[SilkRoadSwitch] = [
            SilkRoadSwitch(config, name=f"{name}-{i}") for i in range(num_switches)
        ]
        self._ids = [_SwitchId(i) for i in range(num_switches)]
        self._ecmp = ResilientHashTable(self._ids, num_slots=ecmp_slots)
        self._alive: Set[int] = set(range(num_switches))
        self._owner: Dict[bytes, int] = {}  # conn key -> switch index
        self._conns: Dict[bytes, Connection] = {}
        self._scheduled_failures: List[Tuple[int, float]] = []  # before bind
        self._scheduled_revivals: List[Tuple[int, float]] = []  # before bind
        # The fleet's authoritative view of each VIP's current pool, kept in
        # lockstep with the update stream.  A revived switch re-syncs its
        # VIPTable from here before rejoining ECMP.
        self._pools: Dict[VirtualIP, List[DirectIP]] = {}
        # Updates a dead switch missed, per switch index.  Purely explicit
        # bookkeeping: a revived switch never replays these one by one — it
        # boots empty and announces the *current* pools — but tracking them
        # makes the staleness visible to tests and reports.
        self.missed_updates: Dict[int, List[UpdateEvent]] = {}
        self._generations = [0] * num_switches
        self.failovers = 0
        self.revivals = 0
        self.failed_over_connections = 0
        self.failed_back_connections = 0

    # ------------------------------------------------------------------

    def announce_vip(self, vip: VirtualIP, dips: Sequence[DirectIP]) -> None:
        self._pools[vip] = list(dips)
        for switch in self.switches:
            switch.announce_vip(vip, dips)

    def bind(self, queue: EventQueue) -> None:
        super().bind(queue)
        for switch in self.switches:
            switch.bind(queue)
        for index, at in self._scheduled_failures:
            queue.schedule(at, lambda i=index: self.fail_switch(i), PRIO_INTERNAL)
        self._scheduled_failures.clear()
        for index, at in self._scheduled_revivals:
            queue.schedule(at, lambda i=index: self.revive_switch(i), PRIO_INTERNAL)
        self._scheduled_revivals.clear()

    # ------------------------------------------------------------------
    # LoadBalancer interface
    # ------------------------------------------------------------------

    def _pick(self, key: bytes) -> int:
        return self._ecmp.lookup(key).index

    def on_connection_arrival(self, conn: Connection) -> None:
        index = self._pick(conn.key)
        self._owner[conn.key] = index
        self._conns[conn.key] = conn
        self.switches[index].on_connection_arrival(conn)

    def on_connection_batch(self, conns: Sequence[Connection]) -> None:
        """Dispatch an arrival chunk, re-grouped by owning switch.

        The batched driver guarantees no update/end falls inside a chunk,
        so the only events that can interleave between two arrivals are
        heap-scheduled internals (learning polls, CPU installs, expiries,
        scheduled failures/revivals).  A run of consecutive arrivals whose
        ``(start, PRIO_ARRIVAL)`` sorts strictly before the current heap
        head therefore cannot race an ECMP change: ownership is constant
        across the run, and it is forwarded to the owning switch as one
        sub-batch (whose own driver fires any interleaved internals).
        """
        queue = self.queue
        heap = queue._heap
        run_before = queue.run_until_before
        i, n = 0, len(conns)
        while i < n:
            conn = conns[i]
            start = conn.start
            run_before(start, PRIO_ARRIVAL)
            queue.now = start
            while heap and heap[0][3].cancelled:
                heappop(heap)
            if heap:
                head_t, head_p = heap[0][0], heap[0][1]
            else:
                head_t, head_p = float("inf"), PRIO_ARRIVAL
            index = self._pick(conn.key)
            j = i + 1
            while j < n:
                later = conns[j]
                ls = later.start
                if ls > head_t or (ls == head_t and head_p < PRIO_ARRIVAL):
                    break
                if self._pick(later.key) != index:
                    break
                j += 1
            sub = conns[i:j]
            owner = self._owner
            conn_map = self._conns
            for c in sub:
                owner[c.key] = index
                conn_map[c.key] = c
            self.switches[index].on_connection_batch(sub)
            i = j

    def on_connection_end(self, conn: Connection) -> None:
        index = self._owner.pop(conn.key, None)
        self._conns.pop(conn.key, None)
        if index is not None:
            self.switches[index].on_connection_end(conn)

    def apply_update(self, event: UpdateEvent) -> None:
        # Maintain the fleet-level pool mirror first (guarded like the
        # baseline ECMP balancer, so a stray duplicate event is a no-op).
        pool = self._pools.get(event.vip)
        if pool is not None:
            if event.kind is UpdateKind.REMOVE:
                if event.dip not in pool:
                    return
                pool.remove(event.dip)
            else:
                if event.dip in pool:
                    return
                pool.append(event.dip)
        # The operator pushes the update to every alive switch; each runs
        # its own 3-step protocol against its own pending connections.  A
        # dead switch misses it — tracked so the staleness is explicit.
        for index in range(len(self.switches)):
            if index in self._alive:
                self.switches[index].apply_update(event)
            else:
                self.missed_updates.setdefault(index, []).append(event)

    def finalize(self) -> None:
        for index in sorted(self._alive):
            self.switches[index].finalize()

    # ------------------------------------------------------------------
    # Failure injection / recovery
    # ------------------------------------------------------------------

    def fail_switch(self, index: int) -> int:
        """Kill a switch now; its flows re-ECMP to the survivors.

        Returns the number of connections failed over.
        """
        if index not in self._alive:
            raise ValueError(f"switch {index} is not alive")
        if len(self._alive) == 1:
            raise ValueError("cannot fail the last switch")
        self._alive.discard(index)
        self._ecmp.remove(self._ids[index])
        self.failovers += 1
        moved = 0
        now = self.queue.now
        for key, owner in list(self._owner.items()):
            if owner != index:
                continue
            conn = self._conns[key]
            if not conn.active_at(now):
                continue
            new_index = self._pick(key)
            self._owner[key] = new_index
            # The surviving switch sees the flow as new traffic: ConnTable
            # miss, VIPTable decides with the *current* version.  Replaying
            # it through the arrival path models exactly that (including
            # learning and re-installation) — unless the survivor still
            # holds the flow's own entry from an earlier ownership stint,
            # in which case the packets hit it and keep the pinned version.
            survivor = self.switches[new_index]
            if not survivor.resume_connection(conn):
                survivor.on_connection_arrival(conn)
            moved += 1
        self.failed_over_connections += moved
        return moved

    def revive_switch(self, index: int) -> int:
        """Bring a failed switch back; returns connections re-homed to it.

        The revived switch is a *fresh* instance: its ConnTable is empty
        and its VIPTable is re-synced to the current pools before the
        switch re-enters ECMP — a stale-version announcement would re-break
        PCC for every flow whose slots the rejoin steals.  Flows whose ECMP
        slots the rejoined switch takes back move like a failover: ended on
        their interim owner, replayed as new traffic on the revived switch.
        """
        if index in self._alive:
            raise ValueError(f"switch {index} is already alive")
        self._generations[index] += 1
        fresh = SilkRoadSwitch(
            self.config, name=f"{self.name}-{index}r{self._generations[index]}"
        )
        # Step 1 — state re-learn: announce every VIP at its *current*
        # pool.  This is what resolves the updates the switch missed while
        # dead; it must complete before ECMP sees the switch again.
        for vip, dips in self._pools.items():
            fresh.announce_vip(vip, tuple(dips))
        self.missed_updates.pop(index, None)
        if hasattr(self, "queue"):
            fresh.bind(self.queue)
        self.switches[index] = fresh
        # Step 2 — rejoin ECMP and take back this switch's slots.
        self._alive.add(index)
        self._ecmp.add(self._ids[index])
        self.revivals += 1
        moved = 0
        now = self.queue.now if hasattr(self, "queue") else 0.0
        for key, conn in self._conns.items():
            if not conn.active_at(now):
                continue
            owner = self._owner[key]
            new_index = self._pick(key)
            if new_index == owner:
                continue
            self.switches[owner].on_connection_end(conn)
            self._owner[key] = new_index
            new_owner = self.switches[new_index]
            if not new_owner.resume_connection(conn):
                new_owner.on_connection_arrival(conn)
            moved += 1
        self.failed_back_connections += moved
        return moved

    def schedule_failure(self, index: int, at: float) -> None:
        """Arrange for ``fail_switch(index)`` at simulation time ``at``.

        Usable before the fabric is bound to the simulation queue (the
        failure is then scheduled at bind time).
        """
        if hasattr(self, "queue"):
            self.queue.schedule(at, lambda: self.fail_switch(index), PRIO_INTERNAL)
        else:
            self._scheduled_failures.append((index, at))

    def schedule_revival(self, index: int, at: float) -> None:
        """Arrange for ``revive_switch(index)`` at simulation time ``at``."""
        if hasattr(self, "queue"):
            self.queue.schedule(at, lambda: self.revive_switch(index), PRIO_INTERNAL)
        else:
            self._scheduled_revivals.append((index, at))

    # ------------------------------------------------------------------

    def alive_switches(self) -> List[int]:
        return sorted(self._alive)

    def report(self) -> Dict[str, float]:
        report: Dict[str, float] = {
            "failovers": float(self.failovers),
            "revivals": float(self.revivals),
            "failed_over_connections": float(self.failed_over_connections),
            "failed_back_connections": float(self.failed_back_connections),
            "alive_switches": float(len(self._alive)),
            "missed_updates": float(
                sum(len(events) for events in self.missed_updates.values())
            ),
        }
        # Only alive switches hold *live* fleet state; a dead switch's
        # ConnTable died with it and must not inflate the fleet totals.
        live_entries = 0
        dead_entries = 0
        for index, switch in enumerate(self.switches):
            entries = len(switch.conn_table)
            if index in self._alive:
                report[f"{switch.name}_conn_entries"] = float(entries)
                live_entries += entries
            else:
                dead_entries += entries
        report["fleet_conn_entries"] = float(live_entries)
        report["dead_conn_entries"] = float(dead_entries)
        return report
