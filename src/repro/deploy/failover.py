"""Network-wide SilkRoad with switch failover (§5.3 deployment + §7).

Every switch of the deployment announces every VIP and keeps its *own*
ConnTable; the fabric ECMP-splits flows across the alive switches (with
resilient hashing, so only a failed switch's flows move).  When a switch
dies:

* its connections re-hash to surviving switches, which share the same
  latest VIPTable — so connections that were using the *latest* pool
  version map identically and keep PCC;
* connections pinned to an *older* version lose their ConnTable state with
  the switch and re-hash under the current pool — they may break, exactly
  like losing an SLB would (§7, "Handle switch failures").

:class:`FabricSilkRoad` implements the flow-level
:class:`~repro.netsim.simulator.LoadBalancer` interface so the failure
scenario replays under the standard harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..baselines.ecmp import ResilientHashTable
from ..core.config import SilkRoadConfig
from ..core.silkroad import SilkRoadSwitch
from ..netsim.events import EventQueue
from ..netsim.flows import Connection
from ..netsim.packet import DirectIP
from ..netsim.simulator import LoadBalancer, PRIO_INTERNAL
from ..netsim.updates import UpdateEvent


@dataclass(frozen=True)
class _SwitchId:
    """A hashable stand-in so the resilient table can ECMP over switches."""

    index: int

    # ResilientHashTable hashes str(member); give it a stable name.
    def __str__(self) -> str:
        return f"switch-{self.index}"


class FabricSilkRoad(LoadBalancer):
    """A layer of SilkRoad switches behind fabric ECMP."""

    def __init__(
        self,
        num_switches: int = 4,
        config: SilkRoadConfig = SilkRoadConfig(),
        name: str = "fabric-silkroad",
        ecmp_slots: int = 256,
    ) -> None:
        if num_switches <= 0:
            raise ValueError("need at least one switch")
        self.name = name
        self.switches: List[SilkRoadSwitch] = [
            SilkRoadSwitch(config, name=f"{name}-{i}") for i in range(num_switches)
        ]
        self._ids = [_SwitchId(i) for i in range(num_switches)]
        self._ecmp = ResilientHashTable(self._ids, num_slots=ecmp_slots)
        self._alive: Set[int] = set(range(num_switches))
        self._owner: Dict[bytes, int] = {}  # conn key -> switch index
        self._conns: Dict[bytes, Connection] = {}
        self._scheduled_failures: List = []  # (index, time) before bind
        self.failovers = 0
        self.failed_over_connections = 0

    # ------------------------------------------------------------------

    def announce_vip(self, vip, dips) -> None:
        for switch in self.switches:
            switch.announce_vip(vip, dips)

    def bind(self, queue: EventQueue) -> None:
        super().bind(queue)
        for switch in self.switches:
            switch.bind(queue)
        for index, at in self._scheduled_failures:
            queue.schedule(at, lambda i=index: self.fail_switch(i), PRIO_INTERNAL)
        self._scheduled_failures.clear()

    # ------------------------------------------------------------------
    # LoadBalancer interface
    # ------------------------------------------------------------------

    def _pick(self, key: bytes) -> int:
        return self._ecmp.lookup(key).index

    def on_connection_arrival(self, conn: Connection) -> None:
        index = self._pick(conn.key)
        self._owner[conn.key] = index
        self._conns[conn.key] = conn
        self.switches[index].on_connection_arrival(conn)

    def on_connection_end(self, conn: Connection) -> None:
        index = self._owner.pop(conn.key, None)
        self._conns.pop(conn.key, None)
        if index is not None:
            self.switches[index].on_connection_end(conn)

    def apply_update(self, event: UpdateEvent) -> None:
        # The operator pushes the update to every switch; each runs its own
        # 3-step protocol against its own pending connections.
        for index in sorted(self._alive):
            self.switches[index].apply_update(event)

    def finalize(self) -> None:
        for switch in self.switches:
            switch.finalize()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail_switch(self, index: int) -> int:
        """Kill a switch now; its flows re-ECMP to the survivors.

        Returns the number of connections failed over.
        """
        if index not in self._alive:
            raise ValueError(f"switch {index} is not alive")
        if len(self._alive) == 1:
            raise ValueError("cannot fail the last switch")
        self._alive.discard(index)
        self._ecmp.remove(self._ids[index])
        self.failovers += 1
        moved = 0
        now = self.queue.now
        for key, owner in list(self._owner.items()):
            if owner != index:
                continue
            conn = self._conns[key]
            if not conn.active_at(now):
                continue
            new_index = self._pick(key)
            self._owner[key] = new_index
            # The surviving switch sees the flow as new traffic: ConnTable
            # miss, VIPTable decides with the *current* version.  Replaying
            # it through the arrival path models exactly that (including
            # learning and re-installation).
            self.switches[new_index].on_connection_arrival(conn)
            moved += 1
        self.failed_over_connections += moved
        return moved

    def schedule_failure(self, index: int, at: float) -> None:
        """Arrange for ``fail_switch(index)`` at simulation time ``at``.

        Usable before the fabric is bound to the simulation queue (the
        failure is then scheduled at bind time).
        """
        if hasattr(self, "queue"):
            self.queue.schedule(at, lambda: self.fail_switch(index), PRIO_INTERNAL)
        else:
            self._scheduled_failures.append((index, at))

    # ------------------------------------------------------------------

    def alive_switches(self) -> List[int]:
        return sorted(self._alive)

    def report(self) -> Dict[str, float]:
        report: Dict[str, float] = {
            "failovers": float(self.failovers),
            "failed_over_connections": float(self.failed_over_connections),
            "alive_switches": float(len(self._alive)),
        }
        for switch in self.switches:
            report[f"{switch.name}_conn_entries"] = float(len(switch.conn_table))
        return report
