"""Network-wide VIP-to-layer assignment (§5.3, Figure 11).

Deploying SilkRoad at every switch makes the *placement* of each VIP's
load-balancing function a choice: handle a VIP at the ToR, aggregation, or
core layer, splitting its traffic (and its connection state) via ECMP over
the switches of that layer.  The paper casts this as a bin-packing problem:

    minimize the maximum SRAM utilization across switches, subject to each
    switch's forwarding capacity and SRAM budget.

This module implements the demand model and a greedy longest-processing-
time-style heuristic (exact bin packing is NP-hard), plus incremental
deployment where only a subset of switches is SilkRoad-enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..asicsim.sram import bytes_for_entries
from ..netsim.packet import VirtualIP
from ..netsim.topology import Fabric, Layer, Switch, VipPlacement


@dataclass(frozen=True)
class VipDemand:
    """Placement-relevant demand of one VIP."""

    vip: VirtualIP
    connections: float  # peak simultaneous connections
    traffic_gbps: float

    def sram_bytes(self, entry_bits: int = 28, word_bits: int = 112) -> int:
        """ConnTable SRAM the VIP's connections need (packed entries)."""
        return bytes_for_entries(int(self.connections), entry_bits, word_bits)


@dataclass
class AssignmentResult:
    """Outcome of the bin-packing heuristic."""

    placement: VipPlacement
    sram_used: Dict[str, float]  # per-switch bytes
    traffic_used: Dict[str, float]  # per-switch Gbps
    unplaced: List[VipDemand] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return not self.unplaced

    def max_sram_utilization(self, fabric: Fabric) -> float:
        util = 0.0
        for switch in fabric.all_switches():
            used = self.sram_used.get(switch.name, 0.0)
            if switch.sram_budget_bytes > 0:
                util = max(util, used / switch.sram_budget_bytes)
        return util


def assign_vips(
    fabric: Fabric,
    demands: Sequence[VipDemand],
    entry_bits: int = 28,
    enabled: Optional[Dict[Layer, Sequence[Switch]]] = None,
    sram_headroom: float = 1.0,
) -> AssignmentResult:
    """Greedy min-max assignment of VIPs to fabric layers.

    VIPs are placed in decreasing SRAM-demand order; each goes to the layer
    that minimizes the resulting maximum per-switch SRAM utilization while
    respecting SRAM budgets (scaled by ``sram_headroom``) and forwarding
    capacity.  ``enabled`` restricts each layer to its SilkRoad-enabled
    switches (incremental deployment); a VIP's traffic then splits over
    only those switches.
    """
    if not 0.0 < sram_headroom <= 1.0:
        raise ValueError("sram_headroom must be in (0, 1]")
    layer_switches: Dict[Layer, List[Switch]] = {}
    for layer in Layer:
        switches = list((enabled or {}).get(layer, fabric.layer_switches(layer)))
        layer_switches[layer] = switches

    placement = VipPlacement(fabric=fabric)
    sram_used: Dict[str, float] = {s.name: 0.0 for s in fabric.all_switches()}
    traffic_used: Dict[str, float] = {s.name: 0.0 for s in fabric.all_switches()}
    unplaced: List[VipDemand] = []

    ordered = sorted(demands, key=lambda d: d.sram_bytes(entry_bits), reverse=True)
    for demand in ordered:
        best_layer: Optional[Layer] = None
        best_score = float("inf")
        for layer in Layer:
            switches = layer_switches[layer]
            if not switches:
                continue
            share_sram = demand.sram_bytes(entry_bits) / len(switches)
            share_gbps = demand.traffic_gbps / len(switches)
            feasible = True
            worst = 0.0
            for switch in switches:
                new_sram = sram_used[switch.name] + share_sram
                new_traffic = traffic_used[switch.name] + share_gbps
                if new_sram > switch.sram_budget_bytes * sram_headroom:
                    feasible = False
                    break
                if new_traffic > switch.capacity_gbps:
                    feasible = False
                    break
                worst = max(worst, new_sram / switch.sram_budget_bytes)
            if feasible and worst < best_score:
                best_score = worst
                best_layer = layer
        if best_layer is None:
            unplaced.append(demand)
            continue
        switches = layer_switches[best_layer]
        share_sram = demand.sram_bytes(entry_bits) / len(switches)
        share_gbps = demand.traffic_gbps / len(switches)
        for switch in switches:
            sram_used[switch.name] += share_sram
            traffic_used[switch.name] += share_gbps
        placement.assign(demand.vip, best_layer)

    return AssignmentResult(
        placement=placement,
        sram_used=sram_used,
        traffic_used=traffic_used,
        unplaced=unplaced,
    )
