"""Network-wide deployment: VIP-to-layer assignment and failure handling."""

from .assignment import AssignmentResult, VipDemand, assign_vips
from .failover import FabricSilkRoad
from .failures import (
    BfdProber,
    expected_breakage_after_failover,
    health_check_bandwidth_bps,
    switch_failure_breakage,
)

__all__ = [
    "AssignmentResult",
    "BfdProber",
    "FabricSilkRoad",
    "VipDemand",
    "assign_vips",
    "expected_breakage_after_failover",
    "health_check_bandwidth_bps",
    "switch_failure_breakage",
]
