"""Network-wide deployment: VIP-to-layer assignment and failure handling."""

from .assignment import AssignmentResult, VipDemand, assign_vips
from .failover import FabricSilkRoad
from .failures import (
    BfdProber,
    expected_breakage_after_failover,
    health_check_bandwidth_bps,
    switch_failure_breakage,
)
from .fleet import (
    CAUSE_BLACKHOLE,
    CAUSE_RACE,
    CAUSE_REHASH,
    CAUSE_SHED,
    CAUSE_SWITCH_LOCAL,
    FLEET_CAUSES,
    FleetAuditReport,
    FleetConfig,
    FleetController,
    FleetSilkRoad,
    audit_fleet,
)

__all__ = [
    "AssignmentResult",
    "BfdProber",
    "CAUSE_BLACKHOLE",
    "CAUSE_RACE",
    "CAUSE_REHASH",
    "CAUSE_SHED",
    "CAUSE_SWITCH_LOCAL",
    "FLEET_CAUSES",
    "FabricSilkRoad",
    "FleetAuditReport",
    "FleetConfig",
    "FleetController",
    "FleetSilkRoad",
    "VipDemand",
    "assign_vips",
    "audit_fleet",
    "expected_breakage_after_failover",
    "health_check_bandwidth_bps",
    "switch_failure_breakage",
]
