"""SilkRoad reproduction: stateful L4 load balancing in switching ASICs.

A faithful, laptop-scale reproduction of *SilkRoad: Making Stateful
Layer-4 Load Balancing Fast and Cheap Using Switching ASICs* (Miao, Zeng,
Kim, Lee, Yu — SIGCOMM 2017).

Quickstart::

    from repro import SilkRoadSwitch, SilkRoadConfig
    from repro.netsim import VirtualIP, DirectIP

    switch = SilkRoadSwitch(SilkRoadConfig(conn_table_capacity=100_000))
    switch.announce_vip(
        VirtualIP.parse("20.0.0.1:80"),
        [DirectIP.parse("10.0.0.1:8080"), DirectIP.parse("10.0.0.2:8080")],
    )

Packages:

* :mod:`repro.core` — the SilkRoad switch (ConnTable, VIPTable,
  DIPPoolTable, TransitTable, 3-step PCC updates, control plane),
* :mod:`repro.asicsim` — the switching-ASIC substrate (cuckoo tables,
  register arrays, meters, learning filter, pipeline/resource model),
* :mod:`repro.netsim` — flow-level simulator (events, workloads, updates,
  clusters, fabric),
* :mod:`repro.baselines` — ECMP, resilient hashing, Maglev, SLB, Duet,
* :mod:`repro.traces` — synthetic production-trace substitutes,
* :mod:`repro.deploy` — network-wide VIP placement and failure handling,
* :mod:`repro.experiments` — one harness per paper table/figure.
"""

from .core import SilkRoadConfig, SilkRoadSwitch

__version__ = "1.0.0"

__all__ = ["SilkRoadConfig", "SilkRoadSwitch", "__version__"]
