"""Benchmark for the space-partitioned fleet runner.

Measures the wall-clock speedup of one partitioned `FleetSilkRoad` run
over the same run on one worker, and — regardless of speedup — asserts
the runner's core property: the merged registry and audit fingerprints
are bit-identical whatever the worker count.  Each spawned worker
materializes only its own switch partition, so per-packet ConnTable and
Bloom work splits 1/W per worker while the replicated control plane is
recomputed everywhere; the speedup bound therefore only applies on
hosts with enough cores for the data-plane split to dominate the
replication overhead.
"""

from __future__ import annotations

import os
import time

from repro.experiments.parallel import run_fleet_partitioned

#: A fleet run sized so each of four partitions carries a non-trivial
#: data plane: spawn overhead plus the replicated control plane must be
#: small against the per-switch packet work for the measurement to say
#: anything about the runner.
PARAMS = dict(
    seed=5,
    pattern="crash",
    num_switches=8,
    scale=0.4,
    horizon_s=60.0,
    warmup_s=5.0,
    faults_per_min=4.0,
    replication=2,
)
NUM_WORKERS = 4


def _timed(workers):
    t0 = time.perf_counter()
    result = run_fleet_partitioned(
        partition_workers=workers,
        in_process=(workers == 1),
        **PARAMS,
    )
    return result, time.perf_counter() - t0


def test_bench_partitioned_fleet(once):
    serial, serial_s = _timed(1)
    pooled, pooled_s = once(
        lambda: _timed(min(NUM_WORKERS, os.cpu_count() or 1))
    )

    assert serial.ok and pooled.ok
    # The invariant that makes partitioning safe to use at all: worker
    # count must never move the merged result.
    assert pooled.fingerprint == serial.fingerprint
    assert pooled.audit_fingerprint == serial.audit_fingerprint
    assert pooled.survival == serial.survival

    speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    print(f"\nserial {serial_s:.2f}s, pooled {pooled_s:.2f}s, speedup {speedup:.2f}x")
    if (os.cpu_count() or 1) >= 4:
        # Four switch partitions on four cores: at least 2x after the
        # replicated control plane and epoch barriers (the ISSUE's
        # acceptance bar).
        assert speedup >= 2.0, f"expected >=2x speedup on 4+ cores, got {speedup:.2f}x"
