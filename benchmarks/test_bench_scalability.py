"""Benchmarks for the scalability results (Table 2, Figures 12, 13, 14)."""

from __future__ import annotations

import pytest

from repro.analysis import Cdf
from repro.asicsim.resources import PAPER_TABLE2
from repro.experiments import fig12, fig13, fig14, table2
from repro.netsim.cluster import ClusterType


def test_bench_table2(benchmark):
    measured = benchmark(table2.run)
    for metric, expected in PAPER_TABLE2.items():
        assert measured[metric] == pytest.approx(expected, abs=0.01), metric


def test_bench_fig12(once):
    result = once(lambda: fig12.run(seed=12))
    pop = result.cdf(ClusterType.POP)
    backend = result.cdf(ClusterType.BACKEND)
    frontend = result.cdf(ClusterType.FRONTEND)
    # Paper: PoPs 14 MB median / 32 MB peak; Backends 15 / 58;
    # Frontends < 2 MB; everything fits 50-100 MB ASICs.
    assert 7 < pop.median < 28
    assert 15 < pop.quantile(1.0) < 70
    assert 6 < backend.median < 30
    assert 25 < backend.quantile(1.0) < 90
    assert frontend.quantile(1.0) < 4
    for kind in ClusterType:
        assert result.cdf(kind).quantile(1.0) < 100


def test_bench_fig13(once):
    result = once(lambda: fig13.run(seed=13))
    pop = result.cdf(ClusterType.POP)
    frontend = result.cdf(ClusterType.FRONTEND)
    backend = result.cdf(ClusterType.BACKEND)
    # Paper: PoPs 2-3, Frontends 11 median, Backends 3 median / 277 peak.
    assert 1 <= pop.median <= 12
    assert 5 <= frontend.median <= 20
    assert 1 <= backend.median <= 8
    assert backend.quantile(1.0) > 50  # hundreds at the volume-heavy peak


def test_bench_fig14(once):
    result = once(lambda: fig14.run(seed=14))
    # Paper: all clusters save >40 %; PoPs ~85 % with digest+version.
    assert fig14.run_min_saving(result) > 0.40
    pop = Cdf.of(result.digest_version[ClusterType.POP])
    assert pop.median > 0.75
    # digest+version beats digest-only for the short-connection clusters.
    pop_digest = Cdf.of(result.digest_only[ClusterType.POP])
    assert pop.median > pop_digest.median
