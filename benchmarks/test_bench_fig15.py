"""Benchmark for Figure 15: version reuse bounds the version space."""

from __future__ import annotations

import pytest

from repro.experiments import fig15


def test_bench_fig15(once):
    points = once(lambda: fig15.run(update_counts=(10, 100, 330), seed=15))
    by = {p.updates_applied: p for p in points}
    heavy = points[-1]

    # Paper: ~330 updates need ~330 versions (9 bits) without reuse ...
    assert heavy.versions_no_reuse == pytest.approx(heavy.updates_applied + 1, abs=3)
    assert heavy.bits_no_reuse >= 8
    # ... but with substitution-reuse + recycling, 6 bits (64 live
    # versions) suffice.
    assert heavy.peak_live_with_reuse <= 64
    assert heavy.bits_with_reuse <= 6

    # Reuse wins at every intensity and the gap widens with update count.
    gaps = [p.versions_no_reuse - p.peak_live_with_reuse for p in points]
    assert all(g > 0 for g in gaps)
    assert gaps == sorted(gaps)
