"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper at laptop
scale and asserts the qualitative result (who wins, rough factors,
crossovers) as a regression check.  Heavy flow-level simulations run a
single round via ``benchmark.pedantic``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner
