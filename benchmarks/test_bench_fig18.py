"""Benchmark for Figure 18: TransitTable size vs PCC protection."""

from __future__ import annotations

from repro.experiments import fig18


def test_bench_fig18(once):
    points = once(
        lambda: fig18.run(
            sizes=(8, 256),
            timeouts=(0.5e-3, 5e-3),
            seed=18,
            horizon_s=45.0,
            warmup_s=8.0,
        )
    )
    by = {(p.transit_bytes, p.timeout_s): p for p in points}

    # Paper: 8 B suffices at sub-millisecond filter timeouts ...
    assert by[(8, 0.5e-3)].violations == 0
    # ... but saturates at 5 ms, breaking a handful of connections,
    assert by[(8, 5e-3)].violations > 0
    assert by[(8, 5e-3)].transit_fp_adopted > 0
    # ... while 256 B protects everything everywhere.
    assert by[(256, 0.5e-3)].violations == 0
    assert by[(256, 5e-3)].violations == 0
