"""Benchmark for the sharded parallel replay engine.

Measures the wall-clock speedup of a pooled Figure-16 run over the same
run on one worker, and — regardless of speedup — asserts the engine's
core property: the merged fingerprint is bit-identical whatever the
worker count.  The speedup assertion only applies on hosts with enough
cores to make it meaningful (CI runners are often 1–2 vCPUs, where a
process pool can only add overhead).
"""

from __future__ import annotations

import os
import time

from repro.experiments.parallel import run_sharded

#: A fig16 slice sized so four shards each carry a non-trivial replay:
#: the per-shard work must dwarf spawn overhead (~0.1s/worker) for the
#: speedup measurement to say anything about the engine.
PARAMS = dict(
    num_vips=8,
    scale=0.4,
    horizon_s=120.0,
    warmup_s=10.0,
    updates_per_min=60.0,
    systems=("silkroad",),
)
NUM_SHARDS = 4


def _timed(workers):
    t0 = time.perf_counter()
    result = run_sharded(
        "fig16", num_shards=NUM_SHARDS, workers=workers, seed=16, params=dict(PARAMS)
    )
    return result, time.perf_counter() - t0


def test_bench_parallel_fig16(once):
    serial, serial_s = _timed(1)
    pooled, pooled_s = once(lambda: _timed(min(NUM_SHARDS, os.cpu_count() or 1)))

    assert serial.ok and pooled.ok
    # The invariant that makes sharding safe to use at all: pool size
    # must never move the merged result.
    assert pooled.fingerprint == serial.fingerprint
    assert pooled.counters == serial.counters

    speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    print(f"\nserial {serial_s:.2f}s, pooled {pooled_s:.2f}s, speedup {speedup:.2f}x")
    if (os.cpu_count() or 1) >= 4:
        # Four independent shards on four cores: at least 2x after
        # spawn/merge overhead (the ISSUE's acceptance bar).
        assert speedup >= 2.0, f"expected >=2x speedup on 4+ cores, got {speedup:.2f}x"
