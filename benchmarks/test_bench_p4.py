"""Benchmarks for the P4 data plane: forwarding throughput + equivalence."""

from __future__ import annotations

import pytest

from repro.core import SilkRoadConfig, SilkRoadSwitch
from repro.netsim import Connection, TupleFactory, make_cluster
from repro.p4 import SilkRoadP4, build_packet


@pytest.fixture(scope="module")
def programmed_pipeline():
    cluster = make_cluster(num_vips=4, dips_per_vip=8)
    p4 = SilkRoadP4()
    for service in cluster.services:
        p4.program_vip(service.vip, version=0)
        p4.program_pool(service.vip, 0, service.dips)
    factory = TupleFactory()
    frames = [
        build_packet(factory.next_for(cluster.vips[i % 4]), syn=True)
        for i in range(500)
    ]
    return p4, frames


def test_bench_p4_forwarding(benchmark, programmed_pipeline):
    p4, frames = programmed_pipeline

    def forward_all():
        forwarded = 0
        for frame in frames:
            if p4.process(frame).forwarded:
                forwarded += 1
        return forwarded

    forwarded = benchmark(forward_all)
    assert forwarded == len(frames)


def test_bench_p4_object_model_equivalence(once):
    def run():
        cluster = make_cluster(num_vips=3, dips_per_vip=6)
        switch = SilkRoadSwitch(SilkRoadConfig(conn_table_capacity=20_000))
        for service in cluster.services:
            switch.announce_vip(service.vip, service.dips)
        factory = TupleFactory()
        conns = []
        for i in range(800):
            conn = Connection(
                conn_id=i,
                five_tuple=factory.next_for(cluster.vips[i % 3]),
                vip=cluster.vips[i % 3],
                start=switch.queue.now,
                duration=3600.0,
            )
            switch.on_connection_arrival(conn)
            conns.append(conn)
        switch.queue.run_until(switch.queue.now + 1.0)
        p4 = SilkRoadP4()
        p4.mirror_from(switch)
        return sum(
            1
            for c in conns
            if p4.process(build_packet(c.five_tuple)).dip == c.decisions[-1][1]
        ), len(conns)

    agree, total = once(run)
    assert agree == total  # bit-for-bit forwarding equivalence
