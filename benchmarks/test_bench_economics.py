"""Benchmark for §6.1 economics: power/cost vs an SLB fleet."""

from __future__ import annotations

import pytest

from repro.experiments import economics


def test_bench_economics(benchmark):
    comparison = benchmark(economics.run)
    # Paper: ~1/500 the power and ~1/250 the capital cost.
    assert comparison.power_ratio == pytest.approx(500, rel=0.25)
    assert comparison.cost_ratio == pytest.approx(250, rel=0.05)
    assert comparison.slb_count == pytest.approx(833, rel=0.01)
