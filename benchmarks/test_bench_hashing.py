"""Microbenchmark for the single-pass hash pipeline.

The pipeline's contract: one :func:`base_hash` byte pass per key, with every
stage index, digest and Bloom-way index derived from that base by seeded
integer mixing.  This benchmark times the full per-packet derivation fan-out
(4 stage indexes + 4 digests + 4 Bloom ways) from a cached base and asserts
the one-byte-pass property via the module's ``BASE_HASH_CALLS`` counter.
"""

from __future__ import annotations

import random

from repro.asicsim import hashing
from repro.asicsim.hashing import HashUnit, base_hash, hash_family

NUM_KEYS = 20_000
STAGES = 4
BLOOM_WAYS = 4
DIGEST_BITS = 16
BUCKETS = 1024
BLOOM_BITS = 2048


def make_keys(n: int, seed: int = 16) -> list:
    rnd = random.Random(seed)
    return [bytes(rnd.getrandbits(8) for _ in range(13)) for _ in range(n)]


def test_bench_single_pass_fanout(benchmark):
    """Time base-hash-once + full derivation fan-out for 20 K keys."""
    keys = make_keys(NUM_KEYS)
    index_units = hash_family(STAGES)
    digest_units = hash_family(STAGES, base_seed=0xD16E57)
    bloom_units = hash_family(BLOOM_WAYS, base_seed=0xB100F)

    def fanout():
        out = 0
        for key in keys:
            base = base_hash(key)
            for unit in index_units:
                out ^= unit.index_base(base, BUCKETS)
            for unit in digest_units:
                out ^= unit.digest_base(base, DIGEST_BITS)
            for unit in bloom_units:
                out ^= unit.index_base(base, BLOOM_BITS)
        return out

    before = hashing.BASE_HASH_CALLS
    result = benchmark.pedantic(fanout, rounds=3, iterations=1)
    assert isinstance(result, int)
    # Exactly one byte pass per key per round: the whole fan-out derives
    # from the single cached base.
    assert hashing.BASE_HASH_CALLS - before == 3 * NUM_KEYS


def test_bench_derive_from_cached_base(benchmark):
    """Time the pure integer-mixing path (cached ``Connection.key_hash``)."""
    keys = make_keys(NUM_KEYS)
    bases = [base_hash(key) for key in keys]
    unit = HashUnit(seed=7)

    def derive_all():
        out = 0
        for base in bases:
            out ^= unit.derive(base)
        return out

    before = hashing.BASE_HASH_CALLS
    result = benchmark.pedantic(derive_all, rounds=3, iterations=1)
    assert isinstance(result, int)
    # The cached-base path never touches key bytes.
    assert hashing.BASE_HASH_CALLS == before


def test_key_hash_path_consistent_with_bytes_path():
    """The benchmark's two paths must compute identical values."""
    keys = make_keys(512)
    for unit in hash_family(STAGES):
        for key in keys:
            base = base_hash(key)
            assert unit.hash_bytes(key) == unit.derive(base)
            assert unit.index(key, BUCKETS) == unit.index_base(base, BUCKETS)
            assert unit.digest(key, DIGEST_BITS) == unit.digest_base(
                base, DIGEST_BITS
            )
