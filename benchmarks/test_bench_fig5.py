"""Benchmark for Figure 5: the Duet dilemma (SLB load vs PCC breakage)."""

from __future__ import annotations

import pytest

from repro.experiments import fig5


def test_bench_fig5(once):
    # The horizon must cover the 10-minute migration period, or
    # Migrate-10min degenerates into never-migrate.
    points = once(
        lambda: fig5.run(rates=(1.0, 50.0), scale=0.3, seed=5, horizon_s=900.0)
    )
    by = {(p.policy, p.updates_per_min): p for p in points}

    fast = by[("Migrate-1min", 50.0)]
    slow = by[("Migrate-10min", 50.0)]
    safe = by[("Migrate-PCC", 50.0)]

    # Paper's Figure 5 shape at high update rates:
    # (a) migrating back sooner lowers the SLB load ...
    assert fast.slb_traffic_fraction < slow.slb_traffic_fraction
    # ... (b) but breaks more connections,
    assert fast.violation_fraction >= slow.violation_fraction
    # (c) and waiting for PCC safety costs the most SLB load with zero
    # violations.
    assert safe.violation_fraction == 0.0
    assert safe.slb_traffic_fraction >= slow.slb_traffic_fraction

    # More updates -> more SLB load for the periodic policies.
    assert (
        by[("Migrate-10min", 1.0)].slb_traffic_fraction
        <= slow.slb_traffic_fraction
    )
