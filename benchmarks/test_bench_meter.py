"""Benchmark for §5.2: per-VIP meter marking accuracy at 10 Gb/s."""

from __future__ import annotations

from repro.experiments import meter_accuracy


def test_bench_meter_accuracy(once):
    points = once(meter_accuracy.run)
    # Paper: <1 % average marking error across thresholds and bursts.
    assert meter_accuracy.average_error(points) < 1.0
    for p in points:
        assert p.green_error_pct < 1.0
