"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they quantify the sensitivity of SilkRoad's
design parameters (cuckoo geometry, insertion rate, Bloom sizing, version
reuse) the way an adopter would want before deployment.
"""

from __future__ import annotations

import random

import pytest

from repro.asicsim.cuckoo import CuckooTable, TableFull
from repro.asicsim.registers import BloomFilter
from repro.core.dip_pool_table import DipPoolTable
from repro.experiments import fig16


def _fill(table: CuckooTable, keys) -> int:
    inserted = 0
    for i, key in enumerate(keys):
        try:
            table.insert(key, i % 64)
            inserted += 1
        except TableFull:
            pass
    return inserted


def _keys(n: int, seed: int = 0):
    rnd = random.Random(seed)
    return [bytes(rnd.getrandbits(8) for _ in range(13)) for _ in range(n)]


class TestCuckooGeometryAblation:
    def test_bench_occupancy_vs_ways(self, once):
        """More ways per bucket -> higher achievable occupancy.

        Two stages and an uncapped search (``fast_fail_load=1.0``) expose
        the geometry effect; with four stages the BFS masks it almost
        entirely.
        """

        def run():
            results = {}
            for ways in (1, 2, 4):
                table = CuckooTable(
                    buckets_per_stage=4096 // (2 * ways),
                    ways=ways,
                    stages=2,
                    fast_fail_load=1.0,
                )
                keys = _keys(table.capacity, seed=ways)
                results[ways] = _fill(table, keys) / table.capacity
            return results

        occupancy = once(run)
        assert occupancy[1] < occupancy[4]
        assert occupancy[2] <= occupancy[4]
        assert occupancy[4] > 0.9  # the packing SilkRoad's sizing assumes

    def test_bench_occupancy_vs_stages(self, once):
        """More stages -> more candidate buckets -> better packing."""

        def run():
            results = {}
            for stages in (1, 2, 4):
                table = CuckooTable(
                    buckets_per_stage=4096 // (4 * stages),
                    ways=4,
                    stages=stages,
                    fast_fail_load=1.0,
                )
                keys = _keys(table.capacity, seed=stages)
                results[stages] = _fill(table, keys) / table.capacity
            return results

        occupancy = once(run)
        assert occupancy[1] <= occupancy[2] <= occupancy[4]


class TestInsertionRateAblation:
    def test_bench_pcc_sensitivity_to_cpu_speed(self, once):
        """Without the TransitTable, a slower switch CPU means a longer
        pending window and more broken connections."""

        def run():
            violations = {}
            for rate in (1_000.0, 50_000.0):
                points = fig16.run(
                    rates=(50.0,),
                    scale=0.3,
                    seed=7,
                    horizon_s=180.0,
                    systems={
                        "no-tt": fig16.default_systems(
                            insertion_rate_per_s=rate, learning_timeout_s=5e-3
                        )["silkroad-no-transittable"],
                    },
                )
                violations[rate] = points[0].violations
            return violations

        by_rate = once(run)
        assert by_rate[1_000.0] >= by_rate[50_000.0]
        assert by_rate[1_000.0] > 0


class TestBloomSizingAblation:
    def test_bench_analytic_fp_vs_size(self, benchmark):
        """The 256-byte choice: FP rate collapses with filter size."""

        def run():
            return {
                size: BloomFilter(size).expected_false_positive_rate(50)
                for size in (8, 32, 256, 1024)
            }

        rates = benchmark(run)
        assert rates[8] > rates[32] > rates[256] > rates[1024]
        assert rates[8] > 0.5  # a saturated 64-bit filter
        assert rates[256] < 1e-4  # the paper's pick is comfortably safe


class TestVersionWidthAblation:
    def test_bench_version_bits_vs_exhaustion(self, once):
        """Narrow version fields exhaust under held connections; 6 bits
        with reuse ride out heavy churn."""

        def run():
            from repro.core.dip_pool_table import VersionsExhausted
            from repro.netsim.cluster import make_cluster

            outcomes = {}
            for bits in (2, 6):
                cluster = make_cluster(num_vips=1, dips_per_vip=32)
                vip = cluster.vips[0]
                table = DipPoolTable(version_bits=bits, version_reuse=False)
                table.add_vip(vip, cluster.services[0].dips)
                survived = 0
                try:
                    for i in range(20):
                        table.acquire(vip, table.current_version(vip))
                        table.remove_dip(vip, cluster.services[0].dips[i])
                        survived += 1
                except VersionsExhausted:
                    pass
                outcomes[bits] = survived
            return outcomes

        survived = once(run)
        assert survived[2] < survived[6]
        assert survived[6] == 20


class TestMultiDigestAblation:
    def test_bench_per_stage_digests(self, once):
        """§7: graded digest widths beat a uniform equal-budget table
        while the table is lightly loaded."""
        from repro.experiments import multi_digest

        points = once(lambda: multi_digest.run(capacity=12_000, probes=40_000))
        assert multi_digest.light_fill_advantage(points) > 2.0


class TestDataPlaneMicrobenchmarks:
    def test_bench_lookup_throughput(self, benchmark):
        table = CuckooTable.for_capacity(50_000)
        keys = _keys(40_000, seed=1)
        _fill(table, keys)
        # Probe only resident keys: lookups of keys whose insertion failed
        # may legitimately false-hit another entry.
        probe = [k for k in keys if k in table][::40]

        def lookups():
            for key in probe:
                table.lookup(key)

        benchmark(lookups)
        assert table.false_positive_lookups == 0

    def test_bench_insert_throughput(self, benchmark):
        keys = _keys(5_000, seed=2)

        def inserts():
            table = CuckooTable.for_capacity(10_000)
            _fill(table, keys)
            return table

        table = benchmark(inserts)
        assert len(table) == 5_000
