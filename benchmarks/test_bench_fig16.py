"""Benchmark for Figure 16: PCC violations vs update frequency.

The paper's core comparison: Duet breaks orders of magnitude more
connections than SilkRoad-without-TransitTable, and SilkRoad proper breaks
none at any update rate.
"""

from __future__ import annotations

from repro.experiments import fig16


def test_bench_fig16(once):
    points = once(
        lambda: fig16.run(
            rates=(10.0, 50.0),
            scale=0.5,
            seed=16,
            horizon_s=300.0,
            systems=fig16.default_systems(
                insertion_rate_per_s=10_000.0, duet_period_s=60.0
            ),
        )
    )
    total = {}
    for p in points:
        total[p.system] = total.get(p.system, 0) + p.violations

    # SilkRoad: zero violations at every rate (the headline guarantee).
    assert total["silkroad"] == 0
    # Duet breaks the most; the no-TransitTable ablation sits in between.
    assert total["duet"] > total["silkroad-no-transittable"] >= 0
    assert total["duet"] > 0
