"""Benchmark for §6.1: digest width vs false positives and memory."""

from __future__ import annotations

from repro.experiments import digest_fp


def test_bench_digest_fp(once):
    points = once(
        lambda: digest_fp.run(
            digest_bits=(12, 16, 24), resident=30_000, probes=80_000, seed=0xD16
        )
    )
    by = {p.digest_bits: p for p in points}

    # Wider digests cost more SRAM but collapse the false-positive rate.
    assert by[12].sram_bytes <= by[16].sram_bytes <= by[24].sram_bytes
    assert by[12].fp_rate > by[16].fp_rate >= by[24].fp_rate
    # Paper anchor: 16-bit digest ~0.01 % FP (hundreds per minute at the
    # PoP's 2.77 M new conns/min); 24-bit ~zero at this probe count.
    assert by[16].fp_rate < 1e-3
    assert by[24].fp_rate < 1e-4
