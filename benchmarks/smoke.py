"""CI benchmark smoke check: catch wall-clock regressions early.

Times three representative workloads —

* the single-pass hashing fan-out (the per-packet hot path),
* a small Figure 16 configuration (the full switch model end to end),
  in **both** replay modes: the batched chunked-arrival driver and the
  scalar event-at-a-time oracle, and
* the hardened slow path with fault injection disabled —

and compares them against a checked-in baseline
(``benchmarks/smoke_baseline.json``).  Raw seconds are useless across CI
runners of different speeds, so every measurement is *normalized* by a
calibration loop (pure-Python integer/dict work, independent of the code
under test) run on the same machine.  The check fails when a normalized
measurement exceeds the baseline by more than the tolerance (default 25%),
when the batched fig16 run's metric fingerprint diverges from the scalar
oracle's, or when the batched speedup drops below ``MIN_FIG16_SPEEDUP``.

With ``--workers N`` (N > 1) the script additionally runs a small
sharded Figure 16 replay on an N-worker pool and on a single worker, and
fails if the merged fingerprints differ — the CI guard for the parallel
engine's bit-identity property.

With ``--obs-out PATH`` it also measures the observability layer's
overhead (the same replay bare vs with the flight recorder and timeline
sampler attached) and writes the numbers as JSON — CI uploads this as the
``BENCH_obs.json`` artifact.

Usage::

    python benchmarks/smoke.py                  # compare against baseline
    python benchmarks/smoke.py --write-baseline # record a new baseline
    python benchmarks/smoke.py --workers 2      # also check sharded identity
    python benchmarks/smoke.py --obs-out BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "smoke_baseline.json"
DEFAULT_TOLERANCE = 1.25


# ----------------------------------------------------------------------
# Calibration: machine-speed yardstick, independent of the repo's code
# ----------------------------------------------------------------------


def calibration_loop() -> float:
    """Seconds for a fixed amount of plain-Python integer and dict work."""
    t0 = time.perf_counter()
    acc = 0
    table = {}
    for i in range(400_000):
        acc = (acc * 1103515245 + i) & 0xFFFFFFFF
        table[acc & 1023] = acc
        if acc & 7 == 0:
            acc ^= table.get((acc >> 10) & 1023, 0)
    assert table  # keep the loop's side effects alive
    return time.perf_counter() - t0


def calibrate(rounds: int = 3) -> float:
    return min(calibration_loop() for _ in range(rounds))


# ----------------------------------------------------------------------
# Measured workloads
# ----------------------------------------------------------------------


def bench_hashing() -> float:
    """The per-packet derivation fan-out from one cached base hash."""
    from repro.asicsim.hashing import base_hash, hash_family

    rnd = random.Random(16)
    keys = [bytes(rnd.getrandbits(8) for _ in range(13)) for _ in range(20_000)]
    index_units = hash_family(4)
    digest_units = hash_family(4, base_seed=0xD16E57)
    bloom_units = hash_family(4, base_seed=0xB100F)

    def fanout() -> int:
        out = 0
        for key in keys:
            base = base_hash(key)
            for unit in index_units:
                out ^= unit.index_base(base, 1024)
            for unit in digest_units:
                out ^= unit.digest_base(base, 16)
            for unit in bloom_units:
                out ^= unit.index_base(base, 2048)
        return out

    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fanout()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_fig16_small(batched: bool = True, rounds: int = 2):
    """A small Figure 16 configuration through the full SilkRoad model.

    Runs the same workload through the chunked-arrival driver
    (``batched=True``) or the scalar oracle, and returns
    ``(best_seconds, registry_fingerprint)`` — the smoke gate times both
    modes and fails the build if the fingerprints diverge (the CI-level
    differential check) or if the batched speedup regresses.
    """
    from repro.experiments import fig16
    from repro.experiments.common import build_workload

    systems = fig16.default_systems(
        insertion_rate_per_s=10_000.0, duet_period_s=60.0
    )
    best = float("inf")
    fingerprint = None
    for _ in range(rounds):
        # Same content fig16.run times: workload generation plus replay.
        t0 = time.perf_counter()
        workload = build_workload(
            updates_per_min=50.0, scale=0.5, seed=16, horizon_s=60.0
        )
        report, _conns, lb = workload.replay(systems["silkroad"], batched=batched)
        best = min(best, time.perf_counter() - t0)
        # The run must stay correct, not just fast.
        assert report.pcc_violations == 0, "smoke run broke PCC"
        fingerprint = lb.metrics.fingerprint()
    return best, fingerprint


def bench_slow_path_no_faults() -> float:
    """The hardened slow path with fault injection *disabled*.

    The crash/shed/retry/watchdog hooks are always wired into the switch
    now; this measurement pins down that with no injector attached they
    stay off the hot path (a regression here means the hardening got
    expensive for everyone, not just for chaos runs).
    """
    from repro.experiments.common import build_workload, silkroad_factory

    workload = build_workload(
        updates_per_min=60.0, scale=0.1, seed=16, horizon_s=30.0, warmup_s=3.0
    )
    factory = silkroad_factory(conn_table_capacity=100_000)

    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        report, _conns, switch = workload.replay(factory)
        best = min(best, time.perf_counter() - t0)
        # No faults injected: nothing may shed, relearn, or trip a watchdog.
        counters = switch.report()
        for name in (
            "cpu_jobs_shed", "cpu_jobs_lost", "cpu_crashes",
            "relearns", "at_risk_connections", "watchdog_forced_steps",
        ):
            assert counters[name] == 0.0, f"fault path fired without faults: {name}"
    return best


MEASUREMENTS = {
    "hashing_fanout": bench_hashing,
    "slow_path_no_faults": bench_slow_path_no_faults,
}

#: Minimum batched-over-scalar wall-clock speedup on the fig16_small
#: workload.  Measured ~1.4-1.5x on the dev box; gated with slack for
#: runner noise.  A failure here means the batched driver stopped paying
#: for itself.
MIN_FIG16_SPEEDUP = 1.15


def measure_fig16_pair(normalized: dict, calibration_s: float) -> int:
    """Run fig16_small in both modes; fail on divergence or lost speedup.

    Fills ``normalized['fig16_small']`` (batched, the headline number)
    and ``normalized['fig16_small_scalar']`` (the oracle).  Returns a
    non-zero exit code on oracle divergence or speedup regression.
    """
    batched_s, batched_fp = bench_fig16_small(batched=True)
    scalar_s, scalar_fp = bench_fig16_small(batched=False)
    normalized["fig16_small"] = batched_s / calibration_s
    normalized["fig16_small_scalar"] = scalar_s / calibration_s
    print(
        f"fig16_small: {batched_s:.4f}s batched / {scalar_s:.4f}s scalar "
        f"({normalized['fig16_small']:.2f}x / "
        f"{normalized['fig16_small_scalar']:.2f}x calibration)"
    )
    if batched_fp != scalar_fp:
        print(
            "ERROR: batched run diverged from the scalar oracle "
            f"({batched_fp[:16]}… vs {scalar_fp[:16]}…)"
        )
        return 4
    speedup = scalar_s / batched_s
    status = "ok" if speedup >= MIN_FIG16_SPEEDUP else "REGRESSION"
    print(
        f"fig16_small speedup: {speedup:.2f}x over scalar "
        f"({status}, floor {MIN_FIG16_SPEEDUP}x)"
    )
    if speedup < MIN_FIG16_SPEEDUP:
        print("ERROR: batched driver lost its speedup over the scalar oracle")
        return 5
    return 0


# ----------------------------------------------------------------------
# Observability overhead report (--obs-out)
# ----------------------------------------------------------------------


def measure_obs(rounds: int = 3) -> dict:
    """Bare vs observability-armed replay of the same fig16-style slice.

    Interleaves the two modes and keeps best-of-N of each — the effect
    being measured (the ISSUE's 15% ceiling) is smaller than scheduler
    noise on shared runners, so paired minima are the only stable
    comparison.  Returns the document written to ``BENCH_obs.json``.
    """
    from repro.experiments.common import build_workload, silkroad_factory
    from repro.obs import DEFAULT_RING_SIZE, FlightRecorder, TimelineSampler

    workload_params = dict(
        updates_per_min=60.0, scale=0.2, seed=16, horizon_s=60.0, warmup_s=5.0
    )
    last = {}

    def replay_seconds(armed: bool) -> float:
        workload = build_workload(**workload_params)
        attach = None
        if armed:
            recorder = FlightRecorder(capacity=DEFAULT_RING_SIZE, source="smoke")
            sampler_box = []

            def attach(sim, lb):
                lb.attach_recorder(recorder)
                sampler = TimelineSampler(lb.metrics, 5.0)
                sampler.attach(sim.queue, horizon_s=workload.horizon_s)
                sampler_box.append(sampler)

            last["recorder"] = recorder
            last["samplers"] = sampler_box
        t0 = time.perf_counter()
        workload.replay(silkroad_factory(), attach=attach)
        return time.perf_counter() - t0

    bare_s = armed_s = float("inf")
    for _ in range(rounds):
        bare_s = min(bare_s, replay_seconds(armed=False))
        armed_s = min(armed_s, replay_seconds(armed=True))

    recorder = last["recorder"]
    timeline = last["samplers"][0].timeline
    return {
        "bare_s": round(bare_s, 4),
        "armed_s": round(armed_s, 4),
        "overhead_frac": round(armed_s / bare_s - 1.0, 4),
        "recorder": recorder.summary(),
        "timeline": {
            "epochs": len(timeline),
            "columns": len(timeline.columns),
            "fingerprint": timeline.fingerprint(),
        },
        "note": (
            "Best-of-N interleaved wall clock for one fig16-style replay, "
            "bare vs with flight recorder + timeline sampler attached. "
            "Regenerate with: python benchmarks/smoke.py --obs-out ..."
        ),
    }


# ----------------------------------------------------------------------
# Sharded-replay identity check (--workers N)
# ----------------------------------------------------------------------


def check_sharded_identity(workers: int) -> bool:
    """Run a small sharded fig16 pooled and serially; compare fingerprints.

    Returns True when the merged results are bit-identical (the parallel
    engine's contract — pool size must never move the result).
    """
    from repro.experiments.parallel import run_sharded

    params = dict(
        num_vips=4,
        scale=0.1,
        horizon_s=20.0,
        warmup_s=3.0,
        updates_per_min=20.0,
        systems=("silkroad",),
    )
    pooled = run_sharded(
        "fig16", num_shards=4, workers=workers, seed=16, params=dict(params)
    )
    serial = run_sharded(
        "fig16", num_shards=4, workers=1, seed=16, params=dict(params)
    )
    ok = (
        pooled.ok
        and serial.ok
        and pooled.fingerprint == serial.fingerprint
        and pooled.counters == serial.counters
    )
    status = "ok" if ok else "MISMATCH"
    print(
        f"sharded_identity (workers={workers} vs 1): {status}\n"
        f"  pooled {pooled.fingerprint[:16]}…  serial {serial.fingerprint[:16]}…"
    )
    return ok


# ----------------------------------------------------------------------
# Baseline compare / record
# ----------------------------------------------------------------------


def run(
    baseline_path: Path,
    write: bool,
    tolerance: float,
    workers: int = 1,
    obs_out: Path = None,
) -> int:
    if workers > 1 and not check_sharded_identity(workers):
        print("ERROR: sharded replay fingerprint differs from 1-worker run")
        return 3

    if obs_out is not None:
        doc = measure_obs()
        obs_out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(
            f"obs overhead: bare {doc['bare_s']}s, armed {doc['armed_s']}s "
            f"({doc['overhead_frac']:+.1%}); report written to {obs_out}"
        )

    calibration_s = calibrate()
    print(f"calibration: {calibration_s:.4f}s")
    normalized = {}
    for name, fn in MEASUREMENTS.items():
        seconds = fn()
        normalized[name] = seconds / calibration_s
        print(f"{name}: {seconds:.4f}s  ({normalized[name]:.2f}x calibration)")
    code = measure_fig16_pair(normalized, calibration_s)
    if code:
        return code

    if write:
        doc = {
            "calibration_s": round(calibration_s, 4),
            "normalized": {k: round(v, 3) for k, v in normalized.items()},
            "note": (
                "Normalized = workload seconds / calibration-loop seconds on "
                "the same machine. Regenerate with: "
                "python benchmarks/smoke.py --write-baseline"
            ),
        }
        baseline_path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"baseline written to {baseline_path}")
        return 0

    if not baseline_path.exists():
        print(f"ERROR: no baseline at {baseline_path}; run with --write-baseline")
        return 2
    baseline = json.loads(baseline_path.read_text())["normalized"]
    failed = False
    for name, value in normalized.items():
        ref = baseline.get(name)
        if ref is None:
            print(f"WARNING: no baseline entry for {name}; skipping")
            continue
        ratio = value / ref
        status = "ok" if ratio <= tolerance else "REGRESSION"
        print(f"{name}: {ratio:.2f}x baseline ({status}, tolerance {tolerance}x)")
        if ratio > tolerance:
            failed = True
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also check sharded-replay fingerprint identity on this pool size",
    )
    parser.add_argument(
        "--obs-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="measure observability-layer overhead and write the report here",
    )
    args = parser.parse_args()
    return run(
        args.baseline, args.write_baseline, args.tolerance, args.workers,
        obs_out=args.obs_out,
    )


if __name__ == "__main__":
    sys.exit(main())
