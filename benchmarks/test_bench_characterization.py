"""Benchmarks for the workload-characterization figures (Table 1, Figures
2, 3, 4, 6, 8): synthesize the fleet/logs and reproduce the paper's
summary statistics."""

from __future__ import annotations

import pytest

from repro.analysis import Cdf
from repro.experiments import fig2, fig3, fig4, fig6, fig8, table1
from repro.netsim.cluster import ClusterType
from repro.netsim.updates import RootCause


def test_bench_table1(benchmark):
    rows = benchmark(table1.run)
    assert len(rows) == 3
    assert table1.sram_growth_factor() == pytest.approx(5.0)


def test_bench_fig2(once):
    result = once(lambda: fig2.run(seed=2, minutes=4320))
    pct10 = result.pct_clusters_p99_above(10)
    pct50 = result.pct_clusters_p99_above(50)
    # Paper: 32 % of clusters above 10 updates/min at p99, 3 % above 50.
    assert 15 < pct10 < 55
    assert pct50 < 12
    assert pct50 < pct10


def test_bench_fig3(once):
    shares = once(lambda: fig3.run(seed=3, changes_per_cluster=3000))
    assert shares[RootCause.UPGRADE] == pytest.approx(0.827, abs=0.03)
    for cause, share in shares.items():
        if cause is not RootCause.UPGRADE:
            assert share < 0.13  # paper: every other cause is small


def test_bench_fig4(once):
    cdfs = once(lambda: fig4.run(seed=4, samples=50_000))
    upgrade = cdfs[RootCause.UPGRADE]
    assert upgrade.median / 60.0 == pytest.approx(3.0, rel=0.15)  # 3 min
    assert upgrade.p99 / 60.0 == pytest.approx(100.0, rel=0.3)  # 100 min
    assert cdfs[RootCause.PROVISIONING] is None  # no downtime


def test_bench_fig6(once):
    result = once(lambda: fig6.run(seed=6))
    pop = result.p99_cdf(ClusterType.POP)
    backend = result.p99_cdf(ClusterType.BACKEND)
    frontend = result.p99_cdf(ClusterType.FRONTEND)
    # Paper: peak PoP ~10 M, peak Backend ~15 M, Frontends far fewer.
    assert 5e6 < pop.quantile(1.0) < 3e7
    assert 8e6 < backend.quantile(1.0) < 4e7
    assert frontend.quantile(1.0) < 1.5e6


def test_bench_fig8(once):
    cdf = once(lambda: fig8.run(seed=8))
    # Paper: 1 K to >50 M new connections per VIP-minute.
    assert cdf.quantile(0.05) < 3_000
    assert cdf.quantile(1.0) > 1e6
    assert cdf.median > 3_000
