"""Benchmark for Figure 17: PCC violations vs connection arrival rate."""

from __future__ import annotations

from repro.experiments import fig17


def test_bench_fig17(once):
    points = once(
        lambda: fig17.run(
            arrival_scales=(0.5, 2.0),
            scale=0.5,
            seed=17,
            horizon_s=300.0,
            systems=fig17.default_systems(
                insertion_rate_per_s=10_000.0, duet_period_s=60.0
            ),
        )
    )
    by = {(p.system, p.arrival_scale): p for p in points}

    # SilkRoad: none at any intensity.
    assert by[("silkroad", 0.5)].violations == 0
    assert by[("silkroad", 2.0)].violations == 0
    # Duet's violations grow with the arrival rate (more old connections
    # alive at each migrate-back).
    assert (
        by[("duet", 2.0)].violations >= by[("duet", 0.5)].violations
    )
    assert by[("duet", 2.0)].violations > 0
