"""Benchmarks for the extension experiments (§7 hybrid, switch failure,
latency)."""

from __future__ import annotations

import pytest

from repro.experiments import hybrid, latency, switch_failure


def test_bench_latency(benchmark):
    comparison = benchmark(latency.run)
    assert comparison.silkroad_pipeline_s < 1e-6  # sub-microsecond pipeline
    assert comparison.speedup_vs_slb > 100


def test_bench_hybrid(once):
    points = once(
        lambda: hybrid.run(
            capacities=(800, 20_000), scale=0.2, horizon_s=60.0, updates_per_min=20.0
        )
    )
    small_hybrid = next(p for p in points if p.conn_table_capacity == 800 and p.hybrid)
    big = next(p for p in points if p.conn_table_capacity == 20_000 and p.hybrid)
    # §7: the hybrid pins overflow in software and keeps PCC at zero.
    assert small_hybrid.table_full_events > 0
    assert small_hybrid.overflow_pinned == small_hybrid.table_full_events
    assert small_hybrid.violations == 0
    assert big.table_full_events == 0


def test_bench_switch_failure(once):
    points = once(
        lambda: switch_failure.run(scale=0.15, horizon_s=90.0, failure_at=60.0)
    )
    quiet = next(p for p in points if not p.update_before_failure)
    churned = next(p for p in points if p.update_before_failure)
    # §7: failover alone breaks nothing (same VIPTable everywhere);
    # old-version connections are the only exposure.
    assert quiet.failed_over > 0
    assert quiet.violations == 0
    assert churned.violations > 0
    assert churned.violations <= churned.failed_over
