"""Benchmark for the observability layer: overhead and memory bounds.

Two properties gate the layer's "leave it attached" promise:

* **Overhead** — a fig16-style replay with the flight recorder and the
  timeline sampler armed must cost at most 15% more wall clock than the
  same replay bare.  Runs are *interleaved* (bare, armed, bare, armed, …)
  and compared on best-of-N, because scheduler noise on shared CI runners
  dwarfs the effect being measured.
* **Memory** — the recorder is a bounded ring: however many events a run
  emits, retention never exceeds the configured capacity and every event
  beyond it is accounted to a per-category drop counter.
"""

from __future__ import annotations

import time

from repro.experiments.common import build_workload, silkroad_factory
from repro.obs import DEFAULT_RING_SIZE, FlightRecorder, TimelineSampler

#: Overhead bar from the ISSUE: armed <= 1.15x bare (plus a small absolute
#: allowance so sub-second runs don't flake on timer noise).
MAX_OVERHEAD = 1.15
SLACK_S = 0.05
ROUNDS = 5

WORKLOAD = dict(
    updates_per_min=60.0, scale=0.2, seed=16, horizon_s=60.0, warmup_s=5.0
)


def _replay_seconds(attach=None) -> float:
    workload = build_workload(**WORKLOAD)
    factory = silkroad_factory()
    t0 = time.perf_counter()
    workload.replay(factory, attach=attach)
    return time.perf_counter() - t0


def _armed_attach(recorded_counts):
    def attach(sim, lb):
        # One recorder per round, discarded after the run — keeping five
        # full rings alive would inflate GC for the later rounds and
        # measure the *harness's* memory, not the layer's overhead.
        recorder = FlightRecorder(capacity=DEFAULT_RING_SIZE, source="bench")
        lb.attach_recorder(recorder)
        sampler = TimelineSampler(lb.metrics, 5.0)
        sampler.attach(sim.queue, horizon_s=WORKLOAD["horizon_s"])
        sim.queue.schedule_in(
            WORKLOAD["horizon_s"],
            lambda: recorded_counts.append(recorder.total_recorded),
        )

    return attach


def test_bench_obs_overhead(once):
    recorded_counts = []
    attach = _armed_attach(recorded_counts)

    def measure():
        bare = armed = float("inf")
        for _ in range(ROUNDS):
            bare = min(bare, _replay_seconds())
            armed = min(armed, _replay_seconds(attach=attach))
        return bare, armed

    bare_s, armed_s = once(measure)
    overhead = armed_s / bare_s - 1.0
    print(f"\nbare {bare_s:.3f}s, armed {armed_s:.3f}s, overhead {overhead:+.1%}")
    assert armed_s <= bare_s * MAX_OVERHEAD + SLACK_S, (
        f"observability overhead {overhead:+.1%} exceeds "
        f"{MAX_OVERHEAD - 1.0:.0%} bar"
    )
    # The armed runs must actually have recorded something, or the
    # measurement proves nothing.
    assert len(recorded_counts) == ROUNDS
    assert all(count > 0 for count in recorded_counts)


def test_bench_recorder_memory_bounded(once):
    """A ring far smaller than the event volume: retention stays at
    capacity, accounting stays exact, and the run still completes."""
    capacity = 1024
    recorder = FlightRecorder(capacity=capacity, source="bench")

    def attach(sim, lb):
        lb.attach_recorder(recorder)

    once(lambda: _replay_seconds(attach=attach))
    assert len(recorder) == capacity
    assert recorder.total_dropped > 0
    assert recorder.total_recorded == len(recorder) + recorder.total_dropped
    summary = recorder.summary()
    assert summary["retained"] == capacity
    assert sum(summary["dropped"].values()) == recorder.total_dropped
